package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/perfmodel"
	"cpx/internal/telemetry"
)

// maxBodyBytes bounds request bodies; a full-engine scenario is a few
// kilobytes, so 8 MiB is generous.
const maxBodyBytes = 8 << 20

// statusClientClosed is nginx's convention for "client closed request"
// — the peer disconnected before the job finished. Recorded in the
// metrics; the response itself goes nowhere.
const statusClientClosed = 499

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Machine is the cluster model simulations run against; defaults to
	// cluster.ARCHER2(). Fixed for the server's lifetime — the result
	// cache is per-process, so the machine is implicit in every key.
	Machine *cluster.Machine
	// Workers bounds concurrently running jobs (default 4; a coupled
	// simulation already fans out into one goroutine per rank).
	Workers int
	// QueueLen bounds admitted-but-unstarted jobs (default 16). A full
	// queue answers 429 + Retry-After rather than buffering unboundedly.
	QueueLen int
	// DefaultTimeout is the per-request deadline when the client sends
	// none (default 60s); MaxTimeout caps the client's ?timeout=
	// override (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Logger receives the structured request/job log. Defaults to a
	// discard logger so embedding the server stays quiet; cmd/cpxserve
	// passes a real one.
	Logger *slog.Logger
	// ProgressInterval is the virtual-time sampling period used to feed
	// job progress for /v1/simulate (default telemetry.DefaultInterval).
	ProgressInterval float64
	// CacheMaxBytes bounds the in-memory artifact tier (default 256 MiB);
	// least-recently-used artifacts are evicted beyond it.
	CacheMaxBytes int64
	// CacheDir enables the persistent disk tier under the memory cache:
	// content-addressed artifact files that survive restarts. Empty
	// disables the tier.
	CacheDir string
	// SweepWorkers bounds concurrently outstanding sweep points per
	// /v1/sweep request (default 2×Workers: local points are still
	// throttled by the worker pool, and forwarded points only wait on
	// the network).
	SweepWorkers int
	// Shards lists worker-process base URLs. When non-empty this server
	// runs as a front-end: /v1/simulate jobs (and sweep points) are
	// routed to shards by consistent hashing of the canonical cache key,
	// with degraded-mode local execution when shards are down.
	Shards []string
	// ShardProbeInterval paces the shard health prober (default 2s).
	ShardProbeInterval time.Duration
}

func (o *Options) fill() {
	if o.Machine == nil {
		o.Machine = cluster.ARCHER2()
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 16
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = 2 * o.Workers
	}
}

// Server is the cpxserve request layer: a mux over the model and
// simulation endpoints, backed by the worker pool and the
// content-addressed cache. Create with New, expose via Handler, and
// Close after the HTTP listener has shut down to drain the pool.
type Server struct {
	opts     Options
	pool     *Pool
	cache    *Cache
	metrics  *Metrics
	registry *Registry
	shards   *ShardSet // nil unless running as a sharded front-end
	log      *slog.Logger
	mux      *http.ServeMux
}

// New builds a Server with its pool, cache, registry, metrics and
// routes.
func New(opts Options) *Server {
	opts.fill()
	var disk *DiskCache
	if opts.CacheDir != "" {
		var err error
		disk, err = NewDiskCache(opts.CacheDir)
		if err != nil {
			// The disk tier is an optimisation; a server that cannot open
			// it still serves correctly from memory.
			opts.Logger.Error("disk cache disabled", "dir", opts.CacheDir, "error", err)
		}
	}
	s := &Server{
		opts:     opts,
		cache:    NewCache(CacheConfig{MaxBytes: opts.CacheMaxBytes, Disk: disk}),
		registry: NewRegistry(),
		log:      opts.Logger,
	}
	if len(opts.Shards) > 0 {
		ss, err := NewShardSet(opts.Shards, opts.ShardProbeInterval, opts.Logger)
		if err != nil {
			opts.Logger.Error("shard routing disabled", "error", err)
		} else {
			s.shards = ss
		}
	}
	s.pool = NewPool(opts.Workers, opts.QueueLen)
	s.metrics = NewMetrics(s.pool.Depth, s.pool.Capacity, s.cache.Len)
	s.metrics.AttachRegistry(s.registry)
	s.metrics.AttachCache(s.cache)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/fit", s.post("/v1/fit", s.runFit))
	s.mux.HandleFunc("POST /v1/allocate", s.post("/v1/allocate", s.runAllocate))
	s.mux.HandleFunc("POST /v1/speedup", s.post("/v1/speedup", s.runSpeedup))
	s.mux.HandleFunc("POST /v1/simulate", s.post("/v1/simulate", s.runSimulate))
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	return s
}

// Registry exposes the job registry (for tests and the smoke runner).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool: queued and running jobs finish, new
// submissions are rejected. Call after http.Server.Shutdown has
// stopped accepting requests.
func (s *Server) Close() {
	if s.shards != nil {
		s.shards.Close()
	}
	s.pool.Close()
}

// Cache exposes the result cache (for tests and the smoke runner).
func (s *Server) Cache() *Cache { return s.cache }

// Shards exposes the shard router (nil unless sharded).
func (s *Server) Shards() *ShardSet { return s.shards }

// Metrics exposes the counters (for tests and the smoke runner).
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"queueDepth\":%d,\"cacheEntries\":%d}\n", s.pool.Depth(), s.cache.Len())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// badRequestError marks errors caused by the request content (bad
// spec, unfittable samples, invalid wiring) → 400 instead of 500.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &badRequestError{err}
}

// endpointFunc decodes one endpoint's spec from the body and returns
// the computation to run for it. Decode errors surface before any pool
// or cache interaction. The job is the request's registry entry, for
// endpoints that report live progress.
type endpointFunc func(r *http.Request, jb *Job) (spec any, run func(ctx context.Context) (any, error), err error)

// jsonError writes a structured error body carrying the job ID, so
// every failure — including backpressure 429s — is correlatable with
// the registry, logs and metrics.
func (s *Server) jsonError(w http.ResponseWriter, status int, jobID string, err error) {
	w.Header().Set("Content-Type", "application/json")
	if jobID != "" {
		w.Header().Set("X-Job-ID", jobID)
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		JobID  string `json:"jobId,omitempty"`
		Status int    `json:"status"`
	}{err.Error(), jobID, status})
}

// requestCtx derives the job-wait deadline: the client's ?timeout=
// (clamped to MaxTimeout) or the server default, on top of the
// request's own cancellation (disconnects propagate).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.opts.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		pd, err := time.ParseDuration(v)
		if err != nil || pd <= 0 {
			return nil, nil, fmt.Errorf("invalid timeout %q", v)
		}
		if pd > s.opts.MaxTimeout {
			pd = s.opts.MaxTimeout
		}
		d = pd
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// post wraps an endpoint in the shared serving path: strict decode,
// canonicalise, content-addressed cache with singleflight, bounded
// pool with 429 backpressure, deadline mapping, and metrics.
func (s *Server) post(endpoint string, ep endpointFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		//lint:allow determinism request latency metrics measure host time by definition; nothing feeds the virtual clock
		start := time.Now()
		jb := s.registry.Create(endpoint)
		log := s.log.With("job", jb.ID(), "endpoint", endpoint)
		log.Debug("job admitted")
		code := http.StatusOK
		state := JobDone
		outcome := CacheOutcome("")
		var reqErr error
		defer func() {
			jb.Finish(state, code, outcome, reqErr)
			//lint:allow determinism request latency metrics measure host time by definition; nothing feeds the virtual clock
			elapsed := time.Since(start).Seconds()
			s.metrics.Observe(endpoint, code, elapsed, outcome)
			log.Info("job finished", "state", state, "code", code,
				"cache", string(outcome), "seconds", elapsed)
		}()
		fail := func(status int, failState string, err error) {
			code = status
			state = failState
			reqErr = err
			s.jsonError(w, status, jb.ID(), err)
		}

		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		spec, run, err := ep(r, jb)
		if err != nil {
			fail(http.StatusBadRequest, JobFailed, err)
			return
		}
		canonical, err := canonicalize(spec)
		if err != nil {
			fail(http.StatusInternalServerError, JobFailed, err)
			return
		}
		key := cacheKey(endpoint, canonical)
		ctx, cancel, err := s.requestCtx(r)
		if err != nil {
			fail(http.StatusBadRequest, JobFailed, err)
			return
		}
		defer cancel()

		// Sharded front-end: route simulation jobs to the shard owning
		// this cache key, unless our own memory tier is already warm.
		// Forward failures degrade to the local path below.
		if s.shards != nil && endpoint == "/v1/simulate" {
			if body, ok := s.cache.Peek(key); ok {
				outcome = OutcomeHit
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Cache", string(outcome))
				w.Header().Set("X-Job-ID", jb.ID())
				w.Write(body)
				return
			}
			if sh := s.shards.Route(key); sh != nil {
				jb.Start()
				status, body, oc, ferr := s.shards.Forward(ctx, sh, endpoint, canonical, r.URL.Query().Get("timeout"))
				if ferr == nil {
					outcome = oc
					code = status
					if status != http.StatusOK {
						state = JobFailed
						reqErr = fmt.Errorf("shard %s answered %d", sh.URL, status)
					}
					w.Header().Set("Content-Type", "application/json")
					w.Header().Set("X-Cache", string(oc))
					w.Header().Set("X-Shard", sh.URL)
					w.Header().Set("X-Job-ID", jb.ID())
					w.WriteHeader(status)
					w.Write(body)
					return
				}
				log.Warn("shard forward failed; running locally", "shard", sh.URL, "error", ferr)
			}
		}

		artifact, oc, err := s.cache.Do(ctx, key, s.pool.TrySubmit, func(jobCtx context.Context) ([]byte, error) {
			jb.Start()
			log.Debug("job running")
			out, rerr := run(jobCtx)
			if rerr != nil {
				return nil, rerr
			}
			return canonicalize(out)
		})
		outcome = oc
		var br *badRequestError
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", string(oc))
			w.Header().Set("X-Job-ID", jb.ID())
			w.Write(artifact)
		case errors.Is(err, ErrQueueFull):
			// The hint scales with how long the queue actually takes to
			// drain (EWMA of computed-job latency × queued jobs per
			// worker), so batch clients back off proportionally.
			ra := s.metrics.RetryAfterSeconds(s.pool.Depth(), s.opts.Workers)
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			fail(http.StatusTooManyRequests, JobRejected, errors.New("job queue full; retry later"))
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusGatewayTimeout, JobCanceled, errors.New("request deadline exceeded; the job was cancelled"))
		case errors.Is(err, context.Canceled):
			fail(statusClientClosed, JobCanceled, errors.New("client closed request"))
		case errors.As(err, &br):
			fail(http.StatusBadRequest, JobFailed, err)
		default:
			fail(http.StatusInternalServerError, JobFailed, err)
		}
	}
}

func (s *Server) runFit(r *http.Request, _ *Job) (any, func(context.Context) (any, error), error) {
	var req FitRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		return nil, nil, err
	}
	return &req, func(context.Context) (any, error) {
		samples := make([]perfmodel.Sample, len(req.Samples))
		for i, sp := range req.Samples {
			samples[i] = perfmodel.Sample{Cores: sp.Cores, Runtime: sp.Runtime}
		}
		curve, err := perfmodel.FitCurve(samples)
		if err != nil {
			return nil, badRequest(err)
		}
		maxErr := 0.0
		for _, sp := range samples {
			if e := perfmodel.RelativeError(curve.Runtime(float64(sp.Cores)), sp.Runtime); e > maxErr {
				maxErr = e
			}
		}
		return &FitResponse{
			Curve: CurveSpec{
				BaseCores: curve.BaseCores, BaseTime: curve.BaseTime,
				P50: curve.P50, K: curve.K,
			},
			MaxRelErr: maxErr,
		}, nil
	}, nil
}

// allocateSpecs builds and allocates, shared by /v1/allocate and both
// halves of /v1/speedup.
func allocateSpecs(specs []ComponentSpec, budget int) (*perfmodel.Allocation, error) {
	if budget <= 0 {
		return nil, badRequest(fmt.Errorf("budget must be positive, got %d", budget))
	}
	comps, err := BuildComponents(specs)
	if err != nil {
		return nil, badRequest(err)
	}
	alloc, err := perfmodel.Allocate(comps, budget)
	if err != nil {
		return nil, badRequest(err)
	}
	return alloc, nil
}

func allocationResponse(budget int, alloc *perfmodel.Allocation) *AllocateResponse {
	resp := &AllocateResponse{
		Budget:      budget,
		Predicted:   alloc.Predicted,
		MaxApp:      alloc.MaxApp,
		MaxCU:       alloc.MaxCU,
		Unallocated: alloc.Unallocated,
	}
	for i, cp := range alloc.Components {
		resp.Components = append(resp.Components, AllocatedComponent{
			Name: cp.Name, IsCU: cp.IsCU, Cores: alloc.Cores[i], Time: alloc.Times[i],
		})
	}
	return resp
}

func (s *Server) runAllocate(r *http.Request, _ *Job) (any, func(context.Context) (any, error), error) {
	var req AllocateRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		return nil, nil, err
	}
	return &req, func(context.Context) (any, error) {
		alloc, err := allocateSpecs(req.Components, req.Budget)
		if err != nil {
			return nil, err
		}
		return allocationResponse(req.Budget, alloc), nil
	}, nil
}

func (s *Server) runSpeedup(r *http.Request, _ *Job) (any, func(context.Context) (any, error), error) {
	var req SpeedupRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		return nil, nil, err
	}
	return &req, func(context.Context) (any, error) {
		base, err := allocateSpecs(req.Base, req.Budget)
		if err != nil {
			return nil, err
		}
		opt, err := allocateSpecs(req.Optimized, req.Budget)
		if err != nil {
			return nil, err
		}
		speedup := perfmodel.PredictSpeedup(base, opt)
		if math.IsInf(speedup, 0) || math.IsNaN(speedup) {
			return nil, badRequest(fmt.Errorf("degenerate speedup (optimized prediction is zero)"))
		}
		return &SpeedupResponse{
			Budget:             req.Budget,
			BasePredicted:      base.Predicted,
			OptimizedPredicted: opt.Predicted,
			Speedup:            speedup,
		}, nil
	}, nil
}

func (s *Server) runSimulate(r *http.Request, jb *Job) (any, func(context.Context) (any, error), error) {
	var req SimulateRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		return nil, nil, err
	}
	return &req, s.simulateRunner(&req, jb), nil
}

// simulateRunner returns the computation for one simulation request,
// shared by POST /v1/simulate and every sweep point: build, validate,
// run under the job context, and feed live virtual-time progress into
// the registry entry.
func (s *Server) simulateRunner(reqp *SimulateRequest, jb *Job) func(context.Context) (any, error) {
	req := *reqp
	return func(jobCtx context.Context) (any, error) {
		spec := req.SimSpec // copy: ApplySeed must not mutate the cached spec
		spec.Instances = append([]InstanceSpec(nil), spec.Instances...)
		spec.ApplySeed(req.SeedOffset)
		sim, err := spec.Build()
		if err != nil {
			return nil, badRequest(err)
		}
		if err := sim.Validate(); err != nil {
			return nil, badRequest(err)
		}
		switch req.Sched {
		case "", "goroutine", "event":
		default:
			return nil, badRequest(fmt.Errorf("sched must be \"goroutine\" or \"event\", got %q", req.Sched))
		}
		cfg := mpi.Config{Machine: s.opts.Machine, FastCollectives: req.FastColl,
			EventDriven: req.Sched == "event"}
		// Feed the job's live virtual-time progress from the metrics
		// sampler. Sampling never perturbs the simulation (clocks and
		// results stay bitwise identical), so cached artifacts are the
		// same with or without a watcher. Storage is kept minimal: the
		// progress feed needs the observer, not the series.
		cfg.Metrics = &telemetry.Config{
			Interval:   s.opts.ProgressInterval,
			MaxSamples: 1,
			Observer:   func(rank int, sm telemetry.Sample) { jb.ObserveProgress(sm.T) },
		}
		rep, err := sim.RunContext(jobCtx, cfg)
		if err != nil {
			return nil, err
		}
		resp := &SimulateResponse{
			Elapsed:       rep.Elapsed,
			DensitySteps:  rep.DensitySteps,
			Ranks:         sim.TotalRanks(),
			CouplingShare: rep.CouplingShare,
		}
		for i, is := range sim.Instances {
			resp.Instances = append(resp.Instances, ComponentTime{
				Name: is.Name, Time: rep.InstanceTime[i], Compute: rep.InstanceComp[i],
			})
		}
		for u, us := range sim.Units {
			resp.Units = append(resp.Units, ComponentTime{
				Name: us.Name, Time: rep.UnitTime[u], Compute: rep.UnitComp[u],
			})
		}
		for i, lr := range rep.ParticleLoads {
			if lr == nil {
				continue
			}
			resp.Particles = append(resp.Particles, ParticleLoadOut{
				Name: sim.Instances[i].Name, Strategy: lr.Strategy,
				Moved: lr.Moved, Stolen: lr.Stolen, Granted: lr.Granted,
				Repartitions:  lr.Repartitions,
				LastImbalance: lr.LastImbalance, PeakImbalance: lr.PeakImbalance,
			})
		}
		return resp, nil
	}
}
