package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ringReplicas is how many virtual points each shard contributes to the
// hash ring. Enough that a handful of shards splits the key space
// near-evenly; removal of one shard only reassigns its own arcs.
const ringReplicas = 64

// Shard is one worker process the front-end can route jobs to.
type Shard struct {
	// URL is the shard's base address (e.g. http://127.0.0.1:8081).
	URL string

	healthy atomic.Bool
}

// Healthy reports the shard's last known state (probed and passive).
func (sh *Shard) Healthy() bool { return sh.healthy.Load() }

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard *Shard
}

// ShardSet routes jobs to worker shards by consistent hashing of the
// canonical cache key: identical scenarios always land on the shard
// whose in-memory cache is warm for them, and adding or removing a
// shard only remaps the arcs that touched it. Health is tracked two
// ways — a background /healthz prober and passive demotion on forward
// errors — and routing walks the ring past unhealthy shards, so a dead
// shard degrades its keys to the next one (or, with every shard down,
// to local execution by the caller).
type ShardSet struct {
	shards []*Shard
	ring   []ringPoint
	client *http.Client
	log    *slog.Logger

	stopOnce sync.Once
	stop     chan struct{}
}

// NewShardSet builds the ring over the given base URLs and starts the
// health prober at the given interval. Shards start healthy and are
// demoted by evidence: a failed probe or a failed forward.
func NewShardSet(urls []string, probeInterval time.Duration, log *slog.Logger) (*ShardSet, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("serve: empty shard list")
	}
	if probeInterval <= 0 {
		probeInterval = 2 * time.Second
	}
	ss := &ShardSet{
		client: &http.Client{},
		log:    log,
		stop:   make(chan struct{}),
	}
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("serve: shard URL %q must be absolute (scheme://host[:port])", raw)
		}
		base := u.Scheme + "://" + u.Host
		if seen[base] {
			return nil, fmt.Errorf("serve: duplicate shard %q", base)
		}
		seen[base] = true
		sh := &Shard{URL: base}
		sh.healthy.Store(true)
		ss.shards = append(ss.shards, sh)
		for r := 0; r < ringReplicas; r++ {
			ss.ring = append(ss.ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", base, r)), shard: sh})
		}
	}
	sort.Slice(ss.ring, func(i, j int) bool { return ss.ring[i].hash < ss.ring[j].hash })
	go ss.probe(probeInterval)
	return ss, nil
}

// ringHash maps a string to its position on the ring: the first 8 bytes
// of its sha256, so ring geometry is identical across processes and
// restarts (no per-process seed).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Shards returns the member shards (for gauges and tests).
func (ss *ShardSet) Shards() []*Shard { return ss.shards }

// Close stops the health prober.
func (ss *ShardSet) Close() { ss.stopOnce.Do(func() { close(ss.stop) }) }

// probe polls every shard's /healthz until Close.
func (ss *ShardSet) probe(interval time.Duration) {
	//lint:allow determinism shard health probing paces host-side HTTP checks; nothing feeds the virtual clock
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ss.stop:
			return
		case <-ticker.C:
			for _, sh := range ss.shards {
				was := sh.healthy.Load()
				now := ss.probeOne(sh, interval)
				if was != now {
					ss.log.Info("shard health changed", "shard", sh.URL, "healthy", now)
				}
			}
		}
	}
}

func (ss *ShardSet) probeOne(sh *Shard, interval time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", sh.URL+"/healthz", nil)
	if err != nil {
		sh.healthy.Store(false)
		return false
	}
	resp, err := ss.client.Do(req)
	ok := err == nil && resp.StatusCode == 200
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	sh.healthy.Store(ok)
	return ok
}

// Route returns the healthy shard owning key's arc, walking the ring
// past unhealthy shards; nil when every shard is down (the caller then
// degrades to local execution).
func (ss *ShardSet) Route(key string) *Shard {
	h := ringHash(key)
	n := len(ss.ring)
	start := sort.Search(n, func(i int) bool { return ss.ring[i].hash >= h })
	for i := 0; i < n; i++ {
		sh := ss.ring[(start+i)%n].shard
		if sh.healthy.Load() {
			return sh
		}
	}
	return nil
}

// RouteAny reports whether any shard is currently healthy.
func (ss *ShardSet) RouteAny() bool {
	for _, sh := range ss.shards {
		if sh.healthy.Load() {
			return true
		}
	}
	return false
}

// Forward posts a canonical request body to the shard's endpoint and
// returns the shard's verdict verbatim: HTTP status, response body and
// cache disposition. A transport error demotes the shard (passive
// health) and is returned for the caller to degrade on; a non-200
// status is the shard's answer, not a shard failure.
func (ss *ShardSet) Forward(ctx context.Context, sh *Shard, endpoint string, canonical []byte, timeout string) (status int, body []byte, outcome CacheOutcome, err error) {
	target := sh.URL + endpoint
	if timeout != "" {
		target += "?timeout=" + url.QueryEscape(timeout)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", target, bytes.NewReader(canonical))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ss.client.Do(req)
	if err != nil {
		sh.healthy.Store(false)
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		sh.healthy.Store(false)
		return 0, nil, "", err
	}
	return resp.StatusCode, b, CacheOutcome(resp.Header.Get("X-Cache")), nil
}
