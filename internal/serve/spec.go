// Package serve exposes the performance model and the virtual-time
// coupled simulator as an HTTP JSON service: fit PE curves, run the
// Algorithm 1 greedy allocation, predict speedups, and execute full
// coupled-simulation jobs. The service layer adds the production
// serving machinery the one-shot CLIs lack — a bounded worker pool
// with backpressure, per-request deadlines with real cancellation
// plumbed into the rank goroutines, a content-addressed result cache
// with singleflight deduplication, and Prometheus-style metrics.
//
// The request schemas here are shared with the CLIs: SimSpec is the
// cpxsim -config schema and ComponentSpec the cpxmodel -components
// schema, so a scenario file works unchanged as a request body.
package serve

import (
	"fmt"
	"strings"

	"cpx/internal/coupler"
	"cpx/internal/perfmodel"
)

// InstanceSpec describes one application instance (the cpxsim schema).
type InstanceSpec struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "mgcfd" | "simpic"
	MeshCells int64  `json:"meshCells"`
	Ranks     int    `json:"ranks"`
	Seed      int64  `json:"seed"`
}

// UnitSpec describes one coupling unit (the cpxsim schema).
type UnitSpec struct {
	Name          string `json:"name"`
	A             int    `json:"a"`
	BIdx          int    `json:"b"`
	Kind          string `json:"kind"` // "sliding" | "steady"
	Points        int    `json:"points"`
	Ranks         int    `json:"ranks"`
	Search        string `json:"search"` // "brute" | "tree" | "prefetch"
	ExchangeEvery int    `json:"exchangeEvery"`
}

// SimSpec is the JSON description of a coupled simulation — the same
// schema cpxsim reads with -config, accepted verbatim by POST
// /v1/simulate.
type SimSpec struct {
	DensitySteps    int            `json:"densitySteps"`
	RotationPerStep float64        `json:"rotationPerStep"`
	Instances       []InstanceSpec `json:"instances"`
	Units           []UnitSpec     `json:"units"`
}

// Build translates the JSON spec into a coupler.Simulation at
// production scale.
func (sp *SimSpec) Build() (*coupler.Simulation, error) {
	sim := &coupler.Simulation{
		DensitySteps:    sp.DensitySteps,
		RotationPerStep: sp.RotationPerStep,
		Scale:           coupler.ProductionScale(),
	}
	for _, ji := range sp.Instances {
		kind := coupler.KindMGCFD
		switch strings.ToLower(ji.Kind) {
		case "mgcfd":
		case "simpic":
			kind = coupler.KindSIMPIC
		default:
			return nil, fmt.Errorf("instance %q: unknown kind %q", ji.Name, ji.Kind)
		}
		sim.Instances = append(sim.Instances, coupler.InstanceSpec{
			Name: ji.Name, Kind: kind, MeshCells: ji.MeshCells, Ranks: ji.Ranks, Seed: ji.Seed,
		})
	}
	for _, ju := range sp.Units {
		kind := coupler.SlidingPlane
		if strings.EqualFold(ju.Kind, "steady") {
			kind = coupler.SteadyState
		}
		search := coupler.TreePrefetch
		switch strings.ToLower(ju.Search) {
		case "brute":
			search = coupler.BruteForce
		case "tree":
			search = coupler.Tree
		case "", "prefetch":
		default:
			return nil, fmt.Errorf("unit %q: unknown search %q", ju.Name, ju.Search)
		}
		sim.Units = append(sim.Units, coupler.UnitSpec{
			Name: ju.Name, A: ju.A, B: ju.BIdx, Kind: kind, Points: ju.Points,
			Ranks: ju.Ranks, Search: search, ExchangeEvery: ju.ExchangeEvery,
		})
	}
	return sim, nil
}

// ApplySeed offsets every instance's setup seed, replaying the whole
// coupled run bitwise-identically for the same offset (the cpxsim
// -seed semantics).
func (sp *SimSpec) ApplySeed(offset int64) {
	for i := range sp.Instances {
		sp.Instances[i].Seed += offset
	}
}

// SampleSpec is one benchmark observation used to fit a PE curve.
type SampleSpec struct {
	Cores   int     `json:"cores"`
	Runtime float64 `json:"runtime"` // seconds
}

// CurveSpec is an explicit fitted curve, accepted instead of samples
// when the caller already knows the knee parameters.
type CurveSpec struct {
	BaseCores int     `json:"baseCores"`
	BaseTime  float64 `json:"baseTime"`
	P50       float64 `json:"p50"`
	K         float64 `json:"k"`
}

// ComponentSpec describes one component for the Algorithm 1 allocation
// — the cpxmodel -components schema. Exactly one of Samples (fit a
// curve) or Curve (use as given) must be set.
type ComponentSpec struct {
	Name      string       `json:"name"`
	IsCU      bool         `json:"isCU"`
	MinRanks  int          `json:"minRanks"`
	SizeRatio float64      `json:"sizeRatio"`
	IterRatio float64      `json:"iterRatio"`
	Samples   []SampleSpec `json:"samples,omitempty"`
	Curve     *CurveSpec   `json:"curve,omitempty"`
}

// Build fits (or adopts) the component's curve and returns the
// perfmodel view of it.
func (cs *ComponentSpec) Build() (perfmodel.Component, error) {
	var curve *perfmodel.Curve
	switch {
	case cs.Curve != nil && len(cs.Samples) > 0:
		return perfmodel.Component{}, fmt.Errorf("component %q: give samples or an explicit curve, not both", cs.Name)
	case cs.Curve != nil:
		curve = &perfmodel.Curve{
			BaseCores: cs.Curve.BaseCores, BaseTime: cs.Curve.BaseTime,
			P50: cs.Curve.P50, K: cs.Curve.K,
		}
	default:
		samples := make([]perfmodel.Sample, len(cs.Samples))
		for i, s := range cs.Samples {
			samples[i] = perfmodel.Sample{Cores: s.Cores, Runtime: s.Runtime}
		}
		var err error
		curve, err = perfmodel.FitCurve(samples)
		if err != nil {
			return perfmodel.Component{}, fmt.Errorf("component %q: %w", cs.Name, err)
		}
	}
	return perfmodel.Component{
		Name: cs.Name, Curve: curve, IsCU: cs.IsCU,
		MinRanks: cs.MinRanks, SizeRatio: cs.SizeRatio, IterRatio: cs.IterRatio,
	}, nil
}

// BuildComponents builds every spec in order.
func BuildComponents(specs []ComponentSpec) ([]perfmodel.Component, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("no components")
	}
	out := make([]perfmodel.Component, len(specs))
	for i := range specs {
		c, err := specs[i].Build()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// FitRequest is the body of POST /v1/fit.
type FitRequest struct {
	Samples []SampleSpec `json:"samples"`
}

// FitResponse reports the fitted knee and the worst per-sample error.
type FitResponse struct {
	Curve     CurveSpec `json:"curve"`
	MaxRelErr float64   `json:"maxRelErr"`
}

// AllocateRequest is the body of POST /v1/allocate.
type AllocateRequest struct {
	Budget     int             `json:"budget"`
	Components []ComponentSpec `json:"components"`
}

// AllocatedComponent is one row of an allocation result.
type AllocatedComponent struct {
	Name  string  `json:"name"`
	IsCU  bool    `json:"isCU"`
	Cores int     `json:"cores"`
	Time  float64 `json:"time"`
}

// AllocateResponse reports the Algorithm 1 allocation.
type AllocateResponse struct {
	Budget      int                  `json:"budget"`
	Components  []AllocatedComponent `json:"components"`
	Predicted   float64              `json:"predicted"`
	MaxApp      float64              `json:"maxApp"`
	MaxCU       float64              `json:"maxCU"`
	Unallocated int                  `json:"unallocated"`
}

// SpeedupRequest is the body of POST /v1/speedup: allocate the same
// budget to a base and an optimised component set and compare.
type SpeedupRequest struct {
	Budget    int             `json:"budget"`
	Base      []ComponentSpec `json:"base"`
	Optimized []ComponentSpec `json:"optimized"`
}

// SpeedupResponse reports both predictions and their ratio.
type SpeedupResponse struct {
	Budget             int     `json:"budget"`
	BasePredicted      float64 `json:"basePredicted"`
	OptimizedPredicted float64 `json:"optimizedPredicted"`
	Speedup            float64 `json:"speedup"`
}

// SimulateRequest is the body of POST /v1/simulate: a cpxsim scenario
// plus run options.
type SimulateRequest struct {
	SimSpec
	// SeedOffset shifts every instance seed (cpxsim -seed).
	SeedOffset int64 `json:"seedOffset,omitempty"`
	// FastColl selects the analytic collective path (cpxsim -fastcoll);
	// virtual times are bitwise-identical either way.
	FastColl bool `json:"fastColl,omitempty"`
	// Sched selects the rank executor (cpxsim -sched): "goroutine" (the
	// default, one goroutine per rank) or "event" (single-threaded
	// discrete-event loop). Virtual times are bitwise-identical either
	// way.
	Sched string `json:"sched,omitempty"`
}

// ComponentTime is one component's virtual-time outcome.
type ComponentTime struct {
	Name    string  `json:"name"`
	Time    float64 `json:"time"`
	Compute float64 `json:"compute"`
}

// SimulateResponse summarises a coupled run.
type SimulateResponse struct {
	Elapsed       float64         `json:"elapsed"`
	DensitySteps  int             `json:"densitySteps"`
	Ranks         int             `json:"ranks"`
	CouplingShare float64         `json:"couplingShare"`
	Instances     []ComponentTime `json:"instances"`
	Units         []ComponentTime `json:"units"`
}

// DemoComponents returns the built-in four-component model scenario
// (cpxmodel -demo): three engine rows with synthetic PE samples and one
// coupling unit. The serve smoke test and the demo CLI share it.
func DemoComponents() []ComponentSpec {
	mk := func(name string, base, p50 float64, isCU bool) ComponentSpec {
		truth := perfmodel.Curve{BaseCores: 100, BaseTime: base, P50: p50, K: 1.3}
		var samples []SampleSpec
		for _, p := range []int{100, 200, 400, 800, 1600, 3200} {
			samples = append(samples, SampleSpec{Cores: p, Runtime: truth.Runtime(float64(p))})
		}
		return ComponentSpec{Name: name, IsCU: isCU, MinRanks: 100, Samples: samples}
	}
	return []ComponentSpec{
		mk("compressor row (24M)", 30, 5000, false),
		mk("combustor (380M equiv)", 400, 2500, false),
		mk("turbine row (150M)", 90, 8000, false),
		mk("coupling unit", 0.5, 200, true),
	}
}
