// Package serve exposes the performance model and the virtual-time
// coupled simulator as an HTTP JSON service: fit PE curves, run the
// Algorithm 1 greedy allocation, predict speedups, and execute full
// coupled-simulation jobs. The service layer adds the production
// serving machinery the one-shot CLIs lack — a bounded worker pool
// with backpressure, per-request deadlines with real cancellation
// plumbed into the rank goroutines, a content-addressed result cache
// with singleflight deduplication, and Prometheus-style metrics.
//
// The request schemas here are shared with the CLIs: SimSpec is the
// cpxsim -config schema and ComponentSpec the cpxmodel -components
// schema, so a scenario file works unchanged as a request body.
package serve

import (
	"fmt"
	"strings"

	"cpx/internal/coupler"
	"cpx/internal/particle"
	"cpx/internal/perfmodel"
)

// InstanceSpec describes one application instance (the cpxsim schema).
// The droplets/strategy/coneFraction/imbalanceThreshold fields apply
// only to kind "particle" (dedicated particle ranks partitioned
// independently of any mesh) and are rejected on other kinds.
type InstanceSpec struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "mgcfd" | "simpic" | "fem" | "particle"
	MeshCells int64  `json:"meshCells"`
	Ranks     int    `json:"ranks"`
	Seed      int64  `json:"seed"`
	// Droplets is the true droplet population of a particle instance
	// (default MeshCells/4, the paper's 7M droplets per 28M cells).
	Droplets int64 `json:"droplets,omitempty"`
	// Strategy selects the particle load balancer: "static" (default),
	// "steal" or "repartition".
	Strategy string `json:"strategy,omitempty"`
	// ConeFraction is the injection-cone volume fraction (default 0.25).
	ConeFraction float64 `json:"coneFraction,omitempty"`
	// ImbalanceThreshold triggers a repartition when max/mean droplet
	// load crosses it (strategy "repartition"; default 1.5, must be >= 1).
	ImbalanceThreshold float64 `json:"imbalanceThreshold,omitempty"`
}

// UnitSpec describes one coupling unit (the cpxsim schema).
type UnitSpec struct {
	Name          string `json:"name"`
	A             int    `json:"a"`
	BIdx          int    `json:"b"`
	Kind          string `json:"kind"` // "sliding" | "steady"
	Points        int    `json:"points"`
	Ranks         int    `json:"ranks"`
	Search        string `json:"search"` // "brute" | "tree" | "prefetch"
	ExchangeEvery int    `json:"exchangeEvery"`
}

// SimSpec is the JSON description of a coupled simulation — the same
// schema cpxsim reads with -config, accepted verbatim by POST
// /v1/simulate.
type SimSpec struct {
	DensitySteps    int            `json:"densitySteps"`
	RotationPerStep float64        `json:"rotationPerStep"`
	Instances       []InstanceSpec `json:"instances"`
	Units           []UnitSpec     `json:"units"`
}

// Build translates the JSON spec into a coupler.Simulation at
// production scale.
func (sp *SimSpec) Build() (*coupler.Simulation, error) {
	sim := &coupler.Simulation{
		DensitySteps:    sp.DensitySteps,
		RotationPerStep: sp.RotationPerStep,
		Scale:           coupler.ProductionScale(),
	}
	for _, ji := range sp.Instances {
		if ji.Ranks < 0 {
			return nil, fmt.Errorf("instance %q: field \"ranks\" must be non-negative, got %d", ji.Name, ji.Ranks)
		}
		kind := coupler.KindMGCFD
		switch strings.ToLower(ji.Kind) {
		case "mgcfd":
		case "simpic":
			kind = coupler.KindSIMPIC
		case "particle":
			kind = coupler.KindParticle
		default:
			return nil, fmt.Errorf("instance %q: unknown kind %q", ji.Name, ji.Kind)
		}
		is := coupler.InstanceSpec{
			Name: ji.Name, Kind: kind, MeshCells: ji.MeshCells, Ranks: ji.Ranks, Seed: ji.Seed,
		}
		if kind == coupler.KindParticle {
			strategy, err := particle.ParseStrategy(ji.Strategy)
			if err != nil {
				return nil, fmt.Errorf("instance %q: field \"strategy\": %w", ji.Name, err)
			}
			if ji.Droplets < 0 {
				return nil, fmt.Errorf("instance %q: field \"droplets\" must be non-negative, got %d", ji.Name, ji.Droplets)
			}
			if ji.ImbalanceThreshold != 0 && ji.ImbalanceThreshold < 1 {
				return nil, fmt.Errorf("instance %q: field \"imbalanceThreshold\" must be >= 1, got %v", ji.Name, ji.ImbalanceThreshold)
			}
			if ji.ConeFraction < 0 || ji.ConeFraction > 1 {
				return nil, fmt.Errorf("instance %q: field \"coneFraction\" must be in [0,1], got %v", ji.Name, ji.ConeFraction)
			}
			is.Particle = &particle.Config{
				Droplets: ji.Droplets, ConeFraction: ji.ConeFraction,
				Strategy: strategy, ImbalanceThreshold: ji.ImbalanceThreshold,
			}
		} else {
			for _, f := range []struct {
				field string
				set   bool
			}{
				{"droplets", ji.Droplets != 0},
				{"strategy", ji.Strategy != ""},
				{"coneFraction", ji.ConeFraction != 0},
				{"imbalanceThreshold", ji.ImbalanceThreshold != 0},
			} {
				if f.set {
					field := f.field
					return nil, fmt.Errorf("instance %q: field %q applies only to kind \"particle\", not %q", ji.Name, field, ji.Kind)
				}
			}
		}
		sim.Instances = append(sim.Instances, is)
	}
	for _, ju := range sp.Units {
		kind := coupler.SlidingPlane
		if strings.EqualFold(ju.Kind, "steady") {
			kind = coupler.SteadyState
		}
		search := coupler.TreePrefetch
		switch strings.ToLower(ju.Search) {
		case "brute":
			search = coupler.BruteForce
		case "tree":
			search = coupler.Tree
		case "", "prefetch":
		default:
			return nil, fmt.Errorf("unit %q: unknown search %q", ju.Name, ju.Search)
		}
		sim.Units = append(sim.Units, coupler.UnitSpec{
			Name: ju.Name, A: ju.A, B: ju.BIdx, Kind: kind, Points: ju.Points,
			Ranks: ju.Ranks, Search: search, ExchangeEvery: ju.ExchangeEvery,
		})
	}
	return sim, nil
}

// ApplySeed offsets every instance's setup seed, replaying the whole
// coupled run bitwise-identically for the same offset (the cpxsim
// -seed semantics).
func (sp *SimSpec) ApplySeed(offset int64) {
	for i := range sp.Instances {
		sp.Instances[i].Seed += offset
	}
}

// SampleSpec is one benchmark observation used to fit a PE curve.
type SampleSpec struct {
	Cores   int     `json:"cores"`
	Runtime float64 `json:"runtime"` // seconds
}

// CurveSpec is an explicit fitted curve, accepted instead of samples
// when the caller already knows the knee parameters.
type CurveSpec struct {
	BaseCores int     `json:"baseCores"`
	BaseTime  float64 `json:"baseTime"`
	P50       float64 `json:"p50"`
	K         float64 `json:"k"`
}

// ComponentSpec describes one component for the Algorithm 1 allocation
// — the cpxmodel -components schema. Exactly one of Samples (fit a
// curve) or Curve (use as given) must be set.
type ComponentSpec struct {
	Name      string       `json:"name"`
	IsCU      bool         `json:"isCU"`
	MinRanks  int          `json:"minRanks"`
	SizeRatio float64      `json:"sizeRatio"`
	IterRatio float64      `json:"iterRatio"`
	Samples   []SampleSpec `json:"samples,omitempty"`
	Curve     *CurveSpec   `json:"curve,omitempty"`
}

// Build fits (or adopts) the component's curve and returns the
// perfmodel view of it.
func (cs *ComponentSpec) Build() (perfmodel.Component, error) {
	var curve *perfmodel.Curve
	switch {
	case cs.Curve != nil && len(cs.Samples) > 0:
		return perfmodel.Component{}, fmt.Errorf("component %q: give samples or an explicit curve, not both", cs.Name)
	case cs.Curve != nil:
		curve = &perfmodel.Curve{
			BaseCores: cs.Curve.BaseCores, BaseTime: cs.Curve.BaseTime,
			P50: cs.Curve.P50, K: cs.Curve.K,
		}
	default:
		samples := make([]perfmodel.Sample, len(cs.Samples))
		for i, s := range cs.Samples {
			samples[i] = perfmodel.Sample{Cores: s.Cores, Runtime: s.Runtime}
		}
		var err error
		curve, err = perfmodel.FitCurve(samples)
		if err != nil {
			return perfmodel.Component{}, fmt.Errorf("component %q: %w", cs.Name, err)
		}
	}
	return perfmodel.Component{
		Name: cs.Name, Curve: curve, IsCU: cs.IsCU,
		MinRanks: cs.MinRanks, SizeRatio: cs.SizeRatio, IterRatio: cs.IterRatio,
	}, nil
}

// BuildComponents builds every spec in order.
func BuildComponents(specs []ComponentSpec) ([]perfmodel.Component, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("no components")
	}
	out := make([]perfmodel.Component, len(specs))
	for i := range specs {
		c, err := specs[i].Build()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// FitRequest is the body of POST /v1/fit.
type FitRequest struct {
	Samples []SampleSpec `json:"samples"`
}

// FitResponse reports the fitted knee and the worst per-sample error.
type FitResponse struct {
	Curve     CurveSpec `json:"curve"`
	MaxRelErr float64   `json:"maxRelErr"`
}

// AllocateRequest is the body of POST /v1/allocate.
type AllocateRequest struct {
	Budget     int             `json:"budget"`
	Components []ComponentSpec `json:"components"`
}

// AllocatedComponent is one row of an allocation result.
type AllocatedComponent struct {
	Name  string  `json:"name"`
	IsCU  bool    `json:"isCU"`
	Cores int     `json:"cores"`
	Time  float64 `json:"time"`
}

// AllocateResponse reports the Algorithm 1 allocation.
type AllocateResponse struct {
	Budget      int                  `json:"budget"`
	Components  []AllocatedComponent `json:"components"`
	Predicted   float64              `json:"predicted"`
	MaxApp      float64              `json:"maxApp"`
	MaxCU       float64              `json:"maxCU"`
	Unallocated int                  `json:"unallocated"`
}

// SpeedupRequest is the body of POST /v1/speedup: allocate the same
// budget to a base and an optimised component set and compare.
type SpeedupRequest struct {
	Budget    int             `json:"budget"`
	Base      []ComponentSpec `json:"base"`
	Optimized []ComponentSpec `json:"optimized"`
}

// SpeedupResponse reports both predictions and their ratio.
type SpeedupResponse struct {
	Budget             int     `json:"budget"`
	BasePredicted      float64 `json:"basePredicted"`
	OptimizedPredicted float64 `json:"optimizedPredicted"`
	Speedup            float64 `json:"speedup"`
}

// SimulateRequest is the body of POST /v1/simulate: a cpxsim scenario
// plus run options.
type SimulateRequest struct {
	SimSpec
	// SeedOffset shifts every instance seed (cpxsim -seed).
	SeedOffset int64 `json:"seedOffset,omitempty"`
	// FastColl selects the analytic collective path (cpxsim -fastcoll);
	// virtual times are bitwise-identical either way.
	FastColl bool `json:"fastColl,omitempty"`
	// Sched selects the rank executor (cpxsim -sched): "goroutine" (the
	// default, one goroutine per rank) or "event" (single-threaded
	// discrete-event loop). Virtual times are bitwise-identical either
	// way.
	Sched string `json:"sched,omitempty"`
}

// ComponentTime is one component's virtual-time outcome.
type ComponentTime struct {
	Name    string  `json:"name"`
	Time    float64 `json:"time"`
	Compute float64 `json:"compute"`
}

// ParticleLoadOut is the load-balancing outcome of one particle
// instance: total droplet migrations, steal traffic, repartition count
// and the final/peak max-mean imbalance.
type ParticleLoadOut struct {
	Name          string  `json:"name"`
	Strategy      string  `json:"strategy"`
	Moved         int     `json:"moved"`
	Stolen        int     `json:"stolen"`
	Granted       int     `json:"granted"`
	Repartitions  int     `json:"repartitions"`
	LastImbalance float64 `json:"lastImbalance"`
	PeakImbalance float64 `json:"peakImbalance"`
}

// SimulateResponse summarises a coupled run.
type SimulateResponse struct {
	Elapsed       float64         `json:"elapsed"`
	DensitySteps  int             `json:"densitySteps"`
	Ranks         int             `json:"ranks"`
	CouplingShare float64         `json:"couplingShare"`
	Instances     []ComponentTime `json:"instances"`
	Units         []ComponentTime `json:"units"`
	// Particles reports the load-balancing outcome of each particle
	// instance (omitted when the simulation has none).
	Particles []ParticleLoadOut `json:"particles,omitempty"`
}

// DemoComponents returns the built-in four-component model scenario
// (cpxmodel -demo): three engine rows with synthetic PE samples and one
// coupling unit. The serve smoke test and the demo CLI share it.
func DemoComponents() []ComponentSpec {
	mk := func(name string, base, p50 float64, isCU bool) ComponentSpec {
		truth := perfmodel.Curve{BaseCores: 100, BaseTime: base, P50: p50, K: 1.3}
		var samples []SampleSpec
		for _, p := range []int{100, 200, 400, 800, 1600, 3200} {
			samples = append(samples, SampleSpec{Cores: p, Runtime: truth.Runtime(float64(p))})
		}
		return ComponentSpec{Name: name, IsCU: isCU, MinRanks: 100, Samples: samples}
	}
	return []ComponentSpec{
		mk("compressor row (24M)", 30, 5000, false),
		mk("combustor (380M equiv)", 400, 2500, false),
		mk("turbine row (150M)", 90, 8000, false),
		mk("coupling unit", 0.5, 200, true),
	}
}
