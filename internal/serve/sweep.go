package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"
)

// maxSweepPoints bounds a single sweep's expanded grid. 4096 points at
// a few KiB of artifact each is well inside the default cache budget;
// anything larger should be split into multiple sweeps.
const maxSweepPoints = 4096

// sweepRetryDelay paces resubmission of a sweep point that found the
// worker queue full. Sweeps absorb backpressure by waiting (bounded by
// the request deadline) instead of failing points with 429s.
const sweepRetryDelay = 5 * time.Millisecond

// SweepAxes are the parameter ranges of a sweep. The cross product of
// every non-empty axis is expanded server-side, in the fixed nesting
// order seedOffsets → meshScales → rankScales → densitySteps →
// strategies (innermost varies fastest), so point indices are
// deterministic.
type SweepAxes struct {
	// SeedOffsets enumerates setup seeds: each value replaces the
	// template's seedOffset (the cpxsim -seed semantics).
	SeedOffsets []int64 `json:"seedOffsets,omitempty"`
	// MeshScales multiplies every instance's meshCells (mesh-scale /
	// weak-scaling studies). Values must be positive.
	MeshScales []float64 `json:"meshScales,omitempty"`
	// RankScales multiplies every instance's and unit's rank count —
	// the core-budget axis of the paper's allocation studies. Values
	// must be positive; scaled counts are clamped to at least 1.
	RankScales []float64 `json:"rankScales,omitempty"`
	// DensitySteps enumerates outer-loop lengths, replacing the
	// template's densitySteps. Values must be positive.
	DensitySteps []int `json:"densitySteps,omitempty"`
	// Strategies enumerates particle load balancers ("static", "steal",
	// "repartition"), applied to every particle instance. Requires the
	// template to contain at least one particle instance.
	Strategies []string `json:"strategies,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a scenario template (the
// /v1/simulate schema) plus parameter ranges expanded into a grid.
type SweepRequest struct {
	Template SimulateRequest `json:"template"`
	Axes     SweepAxes       `json:"axes"`
}

// SweepPoint echoes the parameter values of one grid point. Fields from
// absent axes are omitted.
type SweepPoint struct {
	SeedOffset   *int64   `json:"seedOffset,omitempty"`
	MeshScale    *float64 `json:"meshScale,omitempty"`
	RankScale    *float64 `json:"rankScale,omitempty"`
	DensitySteps *int     `json:"densitySteps,omitempty"`
	Strategy     *string  `json:"strategy,omitempty"`
}

// sweepJob is one expanded grid point ready to run: its parameters, the
// derived simulation request, and the canonical form + cache key —
// computed with the /v1/simulate endpoint name, so sweep points dedup
// against individual simulate calls (and against each other) through
// the same content-addressed cache.
type sweepJob struct {
	index     int
	params    SweepPoint
	simReq    SimulateRequest
	canonical []byte
	key       string
}

// pointResult is one completed point, ready for its NDJSON line.
type pointResult struct {
	job     sweepJob
	body    []byte
	outcome CacheOutcome
	shard   string
	err     error
}

// scaleCount scales a positive count, rounding to nearest and clamping
// to at least 1; non-positive counts pass through (0 means "unset" in
// the schema).
func scaleCount[T int | int64](v T, s float64) T {
	if v <= 0 {
		return v
	}
	scaled := T(math.Round(float64(v) * s))
	if scaled < 1 {
		return 1
	}
	return scaled
}

// derivePoint applies one grid point's parameters to a deep copy of the
// template.
func derivePoint(t *SimulateRequest, p SweepPoint) SimulateRequest {
	d := *t
	d.Instances = append([]InstanceSpec(nil), t.Instances...)
	d.Units = append([]UnitSpec(nil), t.Units...)
	if p.SeedOffset != nil {
		d.SeedOffset = *p.SeedOffset
	}
	if p.MeshScale != nil {
		for i := range d.Instances {
			d.Instances[i].MeshCells = scaleCount(d.Instances[i].MeshCells, *p.MeshScale)
		}
	}
	if p.RankScale != nil {
		for i := range d.Instances {
			d.Instances[i].Ranks = scaleCount(d.Instances[i].Ranks, *p.RankScale)
		}
		for i := range d.Units {
			d.Units[i].Ranks = scaleCount(d.Units[i].Ranks, *p.RankScale)
		}
	}
	if p.DensitySteps != nil {
		d.DensitySteps = *p.DensitySteps
	}
	if p.Strategy != nil {
		for i := range d.Instances {
			if d.Instances[i].Kind == "particle" {
				d.Instances[i].Strategy = *p.Strategy
			}
		}
	}
	return d
}

// expandSweep validates the axes and expands the cross product into
// concrete points with their cache keys.
func expandSweep(req *SweepRequest) ([]sweepJob, error) {
	ax := &req.Axes
	for _, v := range ax.MeshScales {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("axes.meshScales values must be positive and finite, got %v", v)
		}
	}
	for _, v := range ax.RankScales {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("axes.rankScales values must be positive and finite, got %v", v)
		}
	}
	for _, v := range ax.DensitySteps {
		if v <= 0 {
			return nil, fmt.Errorf("axes.densitySteps values must be positive, got %d", v)
		}
	}
	if len(ax.Strategies) > 0 {
		hasParticle := false
		for _, is := range req.Template.Instances {
			if is.Kind == "particle" {
				hasParticle = true
			}
		}
		if !hasParticle {
			return nil, fmt.Errorf("axes.strategies requires a particle instance in the template")
		}
	}

	total := 1
	for _, n := range []int{
		len(ax.SeedOffsets), len(ax.MeshScales), len(ax.RankScales),
		len(ax.DensitySteps), len(ax.Strategies),
	} {
		if n == 0 {
			continue
		}
		total *= n
		if total > maxSweepPoints {
			return nil, fmt.Errorf("sweep grid exceeds %d points", maxSweepPoints)
		}
	}
	if total == 1 && len(ax.SeedOffsets)+len(ax.MeshScales)+len(ax.RankScales)+len(ax.DensitySteps)+len(ax.Strategies) == 0 {
		return nil, fmt.Errorf("axes are empty; give at least one parameter range")
	}

	// orNil iterates an axis, yielding one nil pass when it is absent.
	jobs := make([]sweepJob, 0, total)
	for _, so := range orNil(ax.SeedOffsets) {
		for _, ms := range orNil(ax.MeshScales) {
			for _, rs := range orNil(ax.RankScales) {
				for _, ds := range orNil(ax.DensitySteps) {
					for _, st := range orNil(ax.Strategies) {
						p := SweepPoint{SeedOffset: so, MeshScale: ms, RankScale: rs, DensitySteps: ds, Strategy: st}
						simReq := derivePoint(&req.Template, p)
						canonical, err := canonicalize(&simReq)
						if err != nil {
							return nil, err
						}
						jobs = append(jobs, sweepJob{
							index:     len(jobs),
							params:    p,
							simReq:    simReq,
							canonical: canonical,
							key:       cacheKey("/v1/simulate", canonical),
						})
					}
				}
			}
		}
	}
	return jobs, nil
}

// orNil yields pointers to an axis's values, or a single nil when the
// axis is absent (the template's value applies).
func orNil[T any](vals []T) []*T {
	if len(vals) == 0 {
		return []*T{nil}
	}
	out := make([]*T, len(vals))
	for i := range vals {
		out[i] = &vals[i]
	}
	return out
}

// runPoint executes one sweep point: serve it from the local memory
// tier if warm, else route it to the shard owning its cache key (warm
// shards stay warm), else run it locally through the content-addressed
// cache — waiting out transient queue-full backpressure instead of
// failing the point.
func (s *Server) runPoint(ctx context.Context, pj *sweepJob, child *Job) ([]byte, CacheOutcome, string, error) {
	if s.shards != nil {
		if body, ok := s.cache.Peek(pj.key); ok {
			return body, OutcomeHit, "", nil
		}
		if sh := s.shards.Route(pj.key); sh != nil {
			child.Start()
			status, body, oc, err := s.shards.Forward(ctx, sh, "/v1/simulate", pj.canonical, "")
			if err == nil {
				if status != http.StatusOK {
					return nil, oc, sh.URL, fmt.Errorf("shard %s answered %d: %s", sh.URL, status, body)
				}
				return body, oc, sh.URL, nil
			}
			s.log.Warn("sweep point shard forward failed; running locally",
				"shard", sh.URL, "job", child.ID(), "error", err)
		}
	}
	run := s.simulateRunner(&pj.simReq, child)
	for {
		body, oc, err := s.cache.Do(ctx, pj.key, s.pool.TrySubmit, func(jobCtx context.Context) ([]byte, error) {
			child.Start()
			out, rerr := run(jobCtx)
			if rerr != nil {
				return nil, rerr
			}
			return canonicalize(out)
		})
		if errors.Is(err, ErrQueueFull) {
			select {
			case <-ctx.Done():
				return nil, oc, "", ctx.Err()
			//lint:allow determinism sweep backpressure pacing waits in host time by definition; nothing feeds the virtual clock
			case <-time.After(sweepRetryDelay):
			}
			continue
		}
		return body, oc, "", err
	}
}

// handleSweep serves POST /v1/sweep: expand the grid, fan points out
// across the worker pool (or shard set) with cross-request dedup
// through the content-addressed cache, and stream one NDJSON line per
// completed point. The response is
//
//	{"sweep": {"jobId": ..., "points": N}}            — header
//	{"index": i, "point": {...}, "cache": "hit",
//	 "shard": "...", "result": {...}}                 — per point, in
//	                                                    completion order
//	{"done": {...tallies...}}                         — trailer
//
// The sweep itself is a registry job whose points_total/points_done
// advance as points land (watchable over SSE at /v1/jobs/{id}/events);
// every point is a pinned child job, so watchers of a finished point
// never see its entry evicted while the sweep is live.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/sweep"
	//lint:allow determinism request latency metrics measure host time by definition; nothing feeds the virtual clock
	start := time.Now()
	jb := s.registry.Create(endpoint)
	log := s.log.With("job", jb.ID(), "endpoint", endpoint)
	code := http.StatusOK
	state := JobDone
	var reqErr error
	defer func() {
		jb.Finish(state, code, "", reqErr)
		//lint:allow determinism request latency metrics measure host time by definition; nothing feeds the virtual clock
		elapsed := time.Since(start).Seconds()
		s.metrics.Observe(endpoint, code, elapsed, "")
		log.Info("job finished", "state", state, "code", code,
			"points", jb.pointsDone.Load(), "seconds", elapsed)
	}()
	fail := func(status int, failState string, err error) {
		code = status
		state = failState
		reqErr = err
		s.jsonError(w, status, jb.ID(), err)
	}

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req SweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		fail(http.StatusBadRequest, JobFailed, err)
		return
	}
	switch req.Template.Sched {
	case "", "goroutine", "event":
	default:
		fail(http.StatusBadRequest, JobFailed, fmt.Errorf("template.sched must be \"goroutine\" or \"event\", got %q", req.Template.Sched))
		return
	}
	// Validate the template once up front so an unbuildable scenario is
	// a 400 on the request, not an error on every point.
	if sim, err := req.Template.SimSpec.Build(); err != nil {
		fail(http.StatusBadRequest, JobFailed, err)
		return
	} else if err := sim.Validate(); err != nil {
		fail(http.StatusBadRequest, JobFailed, err)
		return
	}
	jobs, err := expandSweep(&req)
	if err != nil {
		fail(http.StatusBadRequest, JobFailed, err)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		fail(http.StatusBadRequest, JobFailed, err)
		return
	}
	defer cancel()

	fl, ok := w.(http.Flusher)
	if !ok {
		fail(http.StatusInternalServerError, JobFailed, fmt.Errorf("streaming unsupported"))
		return
	}

	jb.SetPoints(len(jobs))
	jb.Start()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-ID", jb.ID())
	fmt.Fprintf(w, "{\"sweep\":{\"jobId\":%q,\"points\":%d}}\n", jb.ID(), len(jobs))
	fl.Flush()

	// Fan out, bounded by SweepWorkers. Every point gets a child
	// registry job, pinned for the sweep's lifetime so its entry stays
	// resolvable for watchers even once terminal.
	children := make([]*Job, len(jobs))
	for i := range jobs {
		children[i] = s.registry.Create(endpoint + "/point")
		children[i].Pin()
	}
	defer func() {
		for _, c := range children {
			c.Unpin()
		}
	}()

	sem := make(chan struct{}, s.opts.SweepWorkers)
	results := make(chan pointResult)
	for i := range jobs {
		go func(pj *sweepJob, child *Job) {
			sem <- struct{}{}
			defer func() { <-sem }()
			body, oc, shard, err := s.runPoint(ctx, pj, child)
			cstate, ccode := JobDone, http.StatusOK
			switch {
			case err == nil:
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				cstate, ccode = JobCanceled, http.StatusGatewayTimeout
			default:
				cstate, ccode = JobFailed, http.StatusInternalServerError
			}
			child.Finish(cstate, ccode, oc, err)
			results <- pointResult{job: *pj, body: body, outcome: oc, shard: shard, err: err}
		}(&jobs[i], children[i])
	}

	tally := struct {
		ok, errs                      int
		hits, joins, misses, diskHits int
	}{}
	for range jobs {
		res := <-results
		s.metrics.ObservePoint(res.outcome)
		pointJSON, merr := json.Marshal(res.job.params)
		if merr != nil {
			pointJSON = []byte("{}")
		}
		if res.err != nil {
			tally.errs++
			errJSON, _ := json.Marshal(res.err.Error())
			fmt.Fprintf(w, "{\"index\":%d,\"point\":%s,\"error\":%s}\n", res.job.index, pointJSON, errJSON)
		} else {
			tally.ok++
			switch res.outcome {
			case OutcomeHit:
				tally.hits++
			case OutcomeJoin:
				tally.joins++
			case OutcomeMiss:
				tally.misses++
			case OutcomeDisk:
				tally.diskHits++
			}
			if res.shard != "" {
				shardJSON, _ := json.Marshal(res.shard)
				fmt.Fprintf(w, "{\"index\":%d,\"point\":%s,\"cache\":%q,\"shard\":%s,\"result\":%s}\n",
					res.job.index, pointJSON, res.outcome, shardJSON, res.body)
			} else {
				fmt.Fprintf(w, "{\"index\":%d,\"point\":%s,\"cache\":%q,\"result\":%s}\n",
					res.job.index, pointJSON, res.outcome, res.body)
			}
		}
		jb.PointDone()
		fl.Flush()
	}
	if ctx.Err() != nil {
		state = JobCanceled
		reqErr = ctx.Err()
	} else if tally.errs > 0 {
		reqErr = fmt.Errorf("%d of %d points failed", tally.errs, len(jobs))
	}
	fmt.Fprintf(w, "{\"done\":{\"points\":%d,\"ok\":%d,\"errors\":%d,\"hits\":%d,\"joins\":%d,\"misses\":%d,\"disk\":%d}}\n",
		len(jobs), tally.ok, tally.errs, tally.hits, tally.joins, tally.misses, tally.diskHits)
	fl.Flush()
}
