package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// sweepTemplate is the scenario swept in these tests: the small coupled
// case from simBody, cheap enough to run hundreds of points.
const sweepTemplate = `{
    "densitySteps": 3,
    "rotationPerStep": 0.001,
    "instances": [
      {"name": "row1", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
      {"name": "row2", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 2}
    ],
    "units": [
      {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}
    ]
  }`

// sweepLine is one decoded NDJSON line of a /v1/sweep response.
type sweepLine struct {
	Sweep *struct {
		JobID  string `json:"jobId"`
		Points int    `json:"points"`
	} `json:"sweep"`
	Index  *int            `json:"index"`
	Point  json.RawMessage `json:"point"`
	Cache  string          `json:"cache"`
	Shard  string          `json:"shard"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
	Done   *struct {
		Points int `json:"points"`
		OK     int `json:"ok"`
		Errors int `json:"errors"`
		Hits   int `json:"hits"`
		Joins  int `json:"joins"`
		Misses int `json:"misses"`
		Disk   int `json:"disk"`
	} `json:"done"`
}

// postSweep runs one sweep and decodes the stream: header, per-point
// lines indexed by grid position, trailer.
func postSweep(t *testing.T, url, body string) (jobID string, points []sweepLine, done sweepLine) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := json.Marshal(resp.Header)
		t.Fatalf("sweep status %d (headers %s)", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<22), 1<<22)
	for sc.Scan() {
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Sweep != nil:
			jobID = line.Sweep.JobID
			points = make([]sweepLine, line.Sweep.Points)
		case line.Index != nil:
			if points == nil || *line.Index < 0 || *line.Index >= len(points) {
				t.Fatalf("point line before header or out of range: %q", sc.Text())
			}
			points[*line.Index] = line
		case line.Done != nil:
			done = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobID == "" || done.Done == nil {
		t.Fatal("sweep stream missing header or trailer")
	}
	return jobID, points, done
}

// TestSweepDedupAcrossRequests: duplicate grid points and points
// already computed by /v1/simulate must each execute exactly once —
// duplicates join or hit, pre-cached points hit, and the payloads are
// byte-identical with the individual endpoint's artifacts.
func TestSweepDedupAcrossRequests(t *testing.T) {
	_, ts := testServer(t, Options{})

	// Pre-warm seedOffset=2 through the individual endpoint.
	preBody := strings.Replace(sweepTemplate, `"densitySteps": 3,`, `"densitySteps": 3, "seedOffset": 2,`, 1)
	resp, pre := postJSON(t, ts.URL+"/v1/simulate", preBody)
	if resp.StatusCode != 200 {
		t.Fatalf("pre-warm: %d (%s)", resp.StatusCode, pre)
	}

	// seedOffsets [1,1,2]: point 1 duplicates point 0, point 2 is warm.
	sweep := fmt.Sprintf(`{"template": %s, "axes": {"seedOffsets": [1, 1, 2]}}`, sweepTemplate)
	_, points, done := postSweep(t, ts.URL, sweep)
	if done.Done.Errors != 0 || done.Done.OK != 3 {
		t.Fatalf("tally: %+v", *done.Done)
	}
	if done.Done.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (one unique cold point)", done.Done.Misses)
	}
	if oc := points[2].Cache; oc != string(OutcomeHit) {
		t.Errorf("pre-warmed point outcome %q, want hit", oc)
	}
	dupOutcomes := []string{points[0].Cache, points[1].Cache}
	missSeen := 0
	for _, oc := range dupOutcomes {
		switch oc {
		case string(OutcomeMiss):
			missSeen++
		case string(OutcomeJoin), string(OutcomeHit):
		default:
			t.Errorf("duplicate point outcome %q", oc)
		}
	}
	if missSeen != 1 {
		t.Errorf("duplicate pair computed %d times, want 1 (outcomes %v)", missSeen, dupOutcomes)
	}
	if !bytes.Equal(points[0].Result, points[1].Result) {
		t.Error("duplicate points returned different payloads")
	}
	if !bytes.Equal(points[2].Result, pre) {
		t.Errorf("sweep point payload differs from /v1/simulate artifact:\n%s\nvs\n%s", points[2].Result, pre)
	}

	// The reverse direction: a point computed by the sweep must be a
	// byte-identical hit for a hand-POSTed equivalent body.
	postBody := strings.Replace(sweepTemplate, `"densitySteps": 3,`, `"densitySteps": 3, "seedOffset": 1,`, 1)
	resp, b := postJSON(t, ts.URL+"/v1/simulate", postBody)
	if resp.StatusCode != 200 {
		t.Fatalf("post-check: %d (%s)", resp.StatusCode, b)
	}
	if oc := resp.Header.Get("X-Cache"); oc != "hit" {
		t.Errorf("equivalent /v1/simulate after sweep: X-Cache %q, want hit", oc)
	}
	if !bytes.Equal(b, points[0].Result) {
		t.Error("/v1/simulate artifact differs from sweep point payload")
	}
}

// TestSweepWarmGrid256: the acceptance grid — a 256-point sweep over a
// warm cache must serve at least 95% of points as hits or joins, with
// every payload byte-identical to the cold run.
func TestSweepWarmGrid256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-point grid in -short mode")
	}
	_, ts := testServer(t, Options{Workers: 8, SweepWorkers: 16})
	seeds := make([]string, 64)
	for i := range seeds {
		seeds[i] = fmt.Sprint(i + 1)
	}
	sweep := fmt.Sprintf(
		`{"template": %s, "axes": {"seedOffsets": [%s], "meshScales": [1, 1.25], "rankScales": [1, 0.5]}}`,
		sweepTemplate, strings.Join(seeds, ","))

	_, cold, doneCold := postSweep(t, ts.URL, sweep)
	if len(cold) != 256 || doneCold.Done.Errors != 0 {
		t.Fatalf("cold run: %d points, tally %+v", len(cold), *doneCold.Done)
	}
	_, warm, doneWarm := postSweep(t, ts.URL, sweep)
	if doneWarm.Done.Errors != 0 {
		t.Fatalf("warm run tally: %+v", *doneWarm.Done)
	}
	served := doneWarm.Done.Hits + doneWarm.Done.Joins + doneWarm.Done.Disk
	if served < 244 { // 95% of 256 = 243.2
		t.Errorf("warm grid served %d/256 from cache, want >= 244 (tally %+v)", served, *doneWarm.Done)
	}
	for i := range warm {
		if !bytes.Equal(warm[i].Result, cold[i].Result) {
			t.Fatalf("point %d payload differs between cold and warm runs", i)
		}
	}
}

// TestSweepBadRequests: invalid sweeps must be rejected up front with a
// 400, not point-by-point errors.
func TestSweepBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := map[string]string{
		"empty axes":         fmt.Sprintf(`{"template": %s, "axes": {}}`, sweepTemplate),
		"zero mesh scale":    fmt.Sprintf(`{"template": %s, "axes": {"meshScales": [0]}}`, sweepTemplate),
		"negative ranks":     fmt.Sprintf(`{"template": %s, "axes": {"rankScales": [-1]}}`, sweepTemplate),
		"zero density steps": fmt.Sprintf(`{"template": %s, "axes": {"densitySteps": [0]}}`, sweepTemplate),
		"strategy, no particles": fmt.Sprintf(
			`{"template": %s, "axes": {"strategies": ["steal"]}}`, sweepTemplate),
		"oversized grid": fmt.Sprintf(
			`{"template": %s, "axes": {"seedOffsets": [%s], "meshScales": [1,2,3,4,5]}}`,
			sweepTemplate, strings.Trim(strings.Repeat("1,", 1000), ",")),
		"unknown field":  fmt.Sprintf(`{"template": %s, "axes": {"bogus": [1]}}`, sweepTemplate),
		"broken template": `{"template": {"densitySteps": 3}, "axes": {"seedOffsets": [1]}}`,
	}
	for name, body := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/sweep", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, b)
		}
	}
}

// TestSweepCacheBoundedEviction: a sweep whose artifacts exceed the
// in-memory budget must complete while the cache stays within budget
// and reports evictions.
func TestSweepCacheBoundedEviction(t *testing.T) {
	// Measure one artifact first, on an unbounded server.
	_, ts := testServer(t, Options{})
	resp, one := postJSON(t, ts.URL+"/v1/simulate", sweepTemplate)
	if resp.StatusCode != 200 {
		t.Fatalf("sizing run: %d", resp.StatusCode)
	}

	budget := int64(len(one)) * 5 / 2 // room for ~2.5 artifacts
	s, ts2 := testServer(t, Options{CacheMaxBytes: budget})
	sweep := fmt.Sprintf(`{"template": %s, "axes": {"seedOffsets": [1,2,3,4,5,6]}}`, sweepTemplate)
	_, _, done := postSweep(t, ts2.URL, sweep)
	if done.Done.Errors != 0 || done.Done.OK != 6 {
		t.Fatalf("sweep over tiny cache: tally %+v", *done.Done)
	}
	if got := s.cache.Bytes(); got > budget {
		t.Errorf("cache holds %d bytes, budget %d", got, budget)
	}
	if s.cache.Evictions() == 0 {
		t.Error("no evictions despite sweep exceeding the byte budget")
	}
	if s.cache.MaxBytes() != budget {
		t.Errorf("MaxBytes = %d, want %d", s.cache.MaxBytes(), budget)
	}
	resp2, metrics := postJSON(t, ts2.URL+"/v1/allocate", allocBody) // any request, then scrape
	if resp2.StatusCode != 200 {
		t.Fatal("allocate failed")
	}
	_ = metrics
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	for _, want := range []string{"cpxserve_cache_evictions_total", "cpxserve_cache_bytes", "cpxserve_cache_max_bytes"} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestCacheOversizedEntryNotAdmitted: a single artifact larger than the
// whole budget must be served but never admitted (it would evict
// everything for no reuse benefit).
func TestCacheOversizedEntryNotAdmitted(t *testing.T) {
	c := NewCache(CacheConfig{MaxBytes: 8})
	submit := func(f func()) bool { go f(); return true }
	body, oc, err := c.Do(t.Context(), "k1", submit, func(ctx context.Context) ([]byte, error) {
		return []byte("way more than eight bytes"), nil
	})
	if err != nil || oc != OutcomeMiss {
		t.Fatalf("Do: %v %v", oc, err)
	}
	if len(body) == 0 {
		t.Fatal("empty body")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("oversized entry admitted: len %d bytes %d", c.Len(), c.Bytes())
	}
}

// TestRetryAfterGrowsWithQueueDepth: the 429 hint must be computed from
// observed job latency and queue depth, not hardcoded.
func TestRetryAfterGrowsWithQueueDepth(t *testing.T) {
	m := NewMetrics(func() int { return 0 }, func() int { return 16 }, func() int { return 0 })
	if got := m.RetryAfterSeconds(10, 4); got != 1 {
		t.Errorf("with no latency observations RetryAfterSeconds = %d, want 1", got)
	}
	m.ObserveJobTime(2.0)
	shallow := m.RetryAfterSeconds(0, 4)
	mid := m.RetryAfterSeconds(8, 4)
	deep := m.RetryAfterSeconds(64, 4)
	if !(shallow < mid && mid < deep) {
		t.Errorf("hint not monotone in depth: %d, %d, %d", shallow, mid, deep)
	}
	if got := m.RetryAfterSeconds(1_000_000, 1); got != retryAfterMaxSeconds {
		t.Errorf("unclamped hint %d, want %d", got, retryAfterMaxSeconds)
	}
}

// TestBackpressureRetryAfterComputed: end to end, a 429 from a wedged
// pool with a seeded latency EWMA must carry the computed hint, not the
// old constant "1".
func TestBackpressureRetryAfterComputed(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, QueueLen: 2})
	s.metrics.ObserveJobTime(10.0)
	release := make(chan struct{})
	ready := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(ready); <-release }) {
		t.Fatal("could not wedge the worker")
	}
	<-ready
	defer close(release)
	for s.pool.TrySubmit(func() {}) {
	}
	resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	// depth 2, 1 worker, EWMA 10s -> ceil(10 * (2/1 + 1)) = 30.
	if ra != "30" {
		t.Errorf("Retry-After = %q, want %q (computed from EWMA x depth)", ra, "30")
	}
}

// TestRegistryPinPreventsEviction: a pinned terminal job must survive
// the retention sweep; once unpinned it is evicted like any other.
func TestRegistryPinPreventsEviction(t *testing.T) {
	reg := NewRegistry()
	pinned := reg.Create("/p")
	pinned.Pin()
	pinned.Finish(JobDone, 200, "", nil)
	flood := func(n int) {
		for i := 0; i < n; i++ {
			j := reg.Create("/flood")
			j.Finish(JobDone, 200, "", nil)
		}
	}
	flood(maxRetainedJobs + 100)
	if reg.Get(pinned.ID()) == nil {
		t.Fatal("pinned terminal job evicted while pinned")
	}
	pinned.Unpin()
	flood(100)
	if reg.Get(pinned.ID()) != nil {
		t.Fatal("unpinned terminal job survived the retention sweep")
	}
}

// TestSweepChildJobsPinnedWhileStreaming: every sweep point gets a
// child job, resolvable through /v1/jobs/{id} right after the sweep
// (the sweep pins children for its own lifetime, so watchers never race
// eviction mid-flight).
func TestSweepChildJobsPinnedWhileStreaming(t *testing.T) {
	s, ts := testServer(t, Options{})
	sweep := fmt.Sprintf(`{"template": %s, "axes": {"seedOffsets": [1, 2]}}`, sweepTemplate)
	jobID, _, _ := postSweep(t, ts.URL, sweep)
	parent := s.registry.Get(jobID)
	if parent == nil {
		t.Fatal("sweep job not in registry")
	}
	v := parent.View()
	if v.PointsTotal != 2 || v.PointsDone != 2 {
		t.Errorf("sweep progress %d/%d, want 2/2", v.PointsDone, v.PointsTotal)
	}
	children := 0
	for _, jv := range s.registry.List() {
		if jv.Endpoint == "/v1/sweep/point" {
			children++
			if jv.State != JobDone {
				t.Errorf("child %s state %q, want done", jv.ID, jv.State)
			}
		}
	}
	if children != 2 {
		t.Errorf("%d child jobs listed, want 2", children)
	}
}

// TestShardRouteDeterministicAndFailover: ring placement must be a pure
// function of the key (stable across ShardSet instances, i.e. across
// processes and restarts); unhealthy shards are walked past; with every
// shard down routing degrades to nil.
func TestShardRouteDeterministicAndFailover(t *testing.T) {
	urls := []string{"http://h1:1", "http://h2:1", "http://h3:1"}
	logger := discardLogger()
	a, err := NewShardSet(urls, time.Hour, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewShardSet(urls, time.Hour, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	keys := make([]string, 200)
	for i := range keys {
		keys[i] = cacheKey("/v1/simulate", []byte(fmt.Sprintf("scenario-%d", i)))
	}
	used := map[string]int{}
	for _, k := range keys {
		sa, sb := a.Route(k), b.Route(k)
		if sa == nil || sb == nil || sa.URL != sb.URL {
			t.Fatalf("key %s routes differently across instances: %v vs %v", k, sa, sb)
		}
		used[sa.URL]++
	}
	if len(used) != 3 {
		t.Errorf("200 keys used %d of 3 shards (%v)", len(used), used)
	}

	victim := a.Route(keys[0])
	victim.healthy.Store(false)
	for _, k := range keys {
		sh := a.Route(k)
		if sh == nil {
			t.Fatal("route returned nil with healthy shards remaining")
		}
		if sh.URL == victim.URL {
			t.Fatalf("key routed to unhealthy shard %s", victim.URL)
		}
	}
	for _, sh := range a.Shards() {
		sh.healthy.Store(false)
	}
	if sh := a.Route(keys[0]); sh != nil {
		t.Errorf("all shards down but Route returned %s; want nil (degrade to local)", sh.URL)
	}
	if a.RouteAny() {
		t.Error("RouteAny true with every shard down")
	}

	if _, err := NewShardSet([]string{"not-a-url"}, time.Hour, logger); err == nil {
		t.Error("relative shard URL accepted")
	}
	if _, err := NewShardSet([]string{"http://h1:1", "http://h1:1"}, time.Hour, logger); err == nil {
		t.Error("duplicate shard accepted")
	}
}

// TestDiskCacheRoundtripAndCorruption: artifacts round-trip through the
// disk tier; a flipped byte fails sha256 verification, rejects the read
// and removes the file.
func TestDiskCacheRoundtripAndCorruption(t *testing.T) {
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"elapsed": 42}`)
	key := cacheKey("/v1/simulate", body)
	if _, ok := dc.Get(key); ok {
		t.Fatal("hit before any put")
	}
	dc.Put(key, body)
	got, ok := dc.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("roundtrip: ok=%v got=%q", ok, got)
	}

	// Corrupt the stored body in place.
	path := filepath.Join(dc.Root(), key[:2], key[2:])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get(key); ok {
		t.Fatal("corrupted artifact served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted artifact not removed")
	}
	_, _, _, rejects := dc.Stats()
	if rejects != 1 {
		t.Errorf("rejects = %d, want 1", rejects)
	}
	if _, ok := dc.Get("zz-not-a-key"); ok {
		t.Error("malformed key served")
	}
}

// TestDiskTierSurvivesRestart: artifacts computed by one server are
// served by a fresh server sharing the cache directory — first from
// disk (verified, promoted), then from memory.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := testServer(t, Options{CacheDir: dir})
	resp, first := postJSON(t, ts1.URL+"/v1/simulate", sweepTemplate)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold run: %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	_, ts2 := testServer(t, Options{CacheDir: dir})
	resp, b := postJSON(t, ts2.URL+"/v1/simulate", sweepTemplate)
	if resp.StatusCode != 200 {
		t.Fatalf("restart run: %d", resp.StatusCode)
	}
	if oc := resp.Header.Get("X-Cache"); oc != string(OutcomeDisk) {
		t.Errorf("after restart X-Cache %q, want %q", oc, OutcomeDisk)
	}
	if !bytes.Equal(b, first) {
		t.Error("artifact differs across restart")
	}
	resp, b = postJSON(t, ts2.URL+"/v1/simulate", sweepTemplate)
	if oc := resp.Header.Get("X-Cache"); oc != string(OutcomeHit) {
		t.Errorf("after promotion X-Cache %q, want hit", oc)
	}
	if !bytes.Equal(b, first) {
		t.Error("promoted artifact differs")
	}
}

// TestSweepPersistsToDiskTier: every sweep point's artifact lands in
// the disk tier, so a restarted server re-serves the whole grid without
// recomputing.
func TestSweepPersistsToDiskTier(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := testServer(t, Options{CacheDir: dir})
	sweep := fmt.Sprintf(`{"template": %s, "axes": {"seedOffsets": [1, 2, 3]}}`, sweepTemplate)
	_, cold, doneCold := postSweep(t, ts1.URL, sweep)
	if doneCold.Done.Errors != 0 {
		t.Fatalf("cold sweep tally: %+v", *doneCold.Done)
	}

	_, ts2 := testServer(t, Options{CacheDir: dir})
	_, warm, doneWarm := postSweep(t, ts2.URL, sweep)
	if doneWarm.Done.Errors != 0 || doneWarm.Done.Misses != 0 {
		t.Fatalf("restarted sweep recomputed points: %+v", *doneWarm.Done)
	}
	for i := range warm {
		if !bytes.Equal(warm[i].Result, cold[i].Result) {
			t.Fatalf("point %d differs across restart", i)
		}
	}
}
