package simpic

import "cpx/internal/fault"

// Checkpoint is a deep copy of the solver's mutable state: particle
// phase space, the step counter driving field sub-cycling and
// diagnostics cadence, the cached field solution, and the absorbed-count
// diagnostic. The field solver itself holds only immutable
// decomposition state and the RNG is consumed entirely during loading,
// so this set resumes the run bit for bit.
type Checkpoint struct {
	Px, Pv           []float64
	StepNum          int
	CachePhi         []float64
	CacheGL, CacheGR float64
	Absorbed         int64
}

// Checkpoint captures the current state.
func (s *Sim) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Px:       append([]float64(nil), s.px...),
		Pv:       append([]float64(nil), s.pv...),
		StepNum:  s.stepNum,
		CachePhi: append([]float64(nil), s.cachePhi...),
		CacheGL:  s.cacheGL,
		CacheGR:  s.cacheGR,
		Absorbed: s.Absorbed,
	}
}

// Restore overwrites the solver state with a checkpoint taken from an
// identically configured instance.
func (s *Sim) Restore(ck *Checkpoint) {
	s.px = append(s.px[:0], ck.Px...)
	s.pv = append(s.pv[:0], ck.Pv...)
	s.stepNum = ck.StepNum
	if ck.CachePhi == nil {
		s.cachePhi = nil
	} else {
		s.cachePhi = append([]float64(nil), ck.CachePhi...)
	}
	s.cacheGL, s.cacheGR = ck.CacheGL, ck.CacheGR
	s.Absorbed = ck.Absorbed
}

// CheckpointBytes is the true (full-scale) state size a rank writes to
// stable storage: the represented particles (position + velocity) plus
// the rank's share of the field.
func (s *Sim) CheckpointBytes() int {
	return int(s.trueParts)*16 + s.trueCells*8
}

// StateDigest hashes the exact bit patterns of the mutable state.
func (s *Sim) StateDigest() uint64 {
	d := fault.NewDigest()
	d.Floats(s.px)
	d.Floats(s.pv)
	d.Int(s.stepNum)
	d.Floats(s.cachePhi)
	d.Float(s.cacheGL)
	d.Float(s.cacheGR)
	d.Int(int(s.Absorbed))
	return d.Sum64()
}
