// Package simpic implements the SIMPIC mini-app: a 1-D electrostatic
// particle-in-cell code (Sandia National Laboratories [17], [35]) that the
// paper uses as a black-box *performance proxy* for the production
// combustion pressure solver. Each time-step deposits particle charge to
// the grid (cloud-in-cell), solves the 1-D Poisson equation for the
// potential with a substructured parallel tridiagonal solver, gathers the
// electric field back to the particles, and pushes them with a leapfrog
// integrator — the synchronous Lagrangian-Eulerian pattern of Fig. 2.
//
// The paper's test-case configurations (Fig. 3) far exceed what can be
// held in memory (up to 7e10 particles); ScaleOpts lets a run execute a
// representative per-rank slice and a sample of the time-steps while the
// virtual-time costs are charged for the full configuration.
package simpic

import "fmt"

// Config describes a SIMPIC test case.
type Config struct {
	Cells            int   // global grid cells
	ParticlesPerCell int   // initial loading
	Steps            int   // time-steps for the full run
	Seed             int64 // particle loading seed

	// Physics parameters; zero values take defaults (unit domain,
	// thermal velocity 0.02 domain-lengths per unit time, dt at a
	// quarter of the cell-crossing time).
	Length  float64
	VTherm  float64
	DtScale float64

	// ParticleWeight scales the charged per-particle work (default 1).
	// The paper hand-picks its test-case parameters so SIMPIC's run-time
	// matches the target pressure solver on ARCHER2; the weight is the
	// equivalent calibration knob for the virtual machine (heavier
	// macro-particles).
	ParticleWeight float64

	// FieldEvery sub-cycles the electrostatic field solve: the Poisson
	// system is solved every FieldEvery steps and the cached field pushes
	// the particles in between (default 1 = every step). The STC
	// configurations use 2, a standard PIC economy when the field evolves
	// slowly relative to the particle motion.
	FieldEvery int

	// PressureStepsEquivalent records how many production pressure-solver
	// time-steps this configuration's full Steps stand in for (the Fig. 3
	// equivalences were measured against 10-step pressure runs). Coupled
	// drivers use it to size the SIMPIC work per coupling exchange.
	// Default 10.
	PressureStepsEquivalent int
}

// StepsPerPressureStep returns the SIMPIC micro-steps representing one
// pressure-solver time-step under this configuration's equivalence.
func (c Config) StepsPerPressureStep() int {
	pse := c.PressureStepsEquivalent
	if pse == 0 {
		pse = 10
	}
	n := c.Steps / pse
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) withDefaults() Config {
	if c.Length == 0 {
		c.Length = 1.0
	}
	if c.VTherm == 0 {
		c.VTherm = 0.02
	}
	if c.DtScale == 0 {
		c.DtScale = 0.25
	}
	if c.ParticleWeight == 0 {
		c.ParticleWeight = 1
	}
	if c.FieldEvery == 0 {
		c.FieldEvery = 1
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cells < 2 {
		return fmt.Errorf("simpic: need at least 2 cells, got %d", c.Cells)
	}
	if c.ParticlesPerCell < 1 {
		return fmt.Errorf("simpic: need at least 1 particle per cell, got %d", c.ParticlesPerCell)
	}
	if c.Steps < 1 {
		return fmt.Errorf("simpic: need at least 1 step, got %d", c.Steps)
	}
	return nil
}

// TotalParticles returns the full-configuration particle count.
func (c Config) TotalParticles() int64 {
	return int64(c.Cells) * int64(c.ParticlesPerCell)
}

// BaseSTC returns the Base SIMPIC test case matched to a production
// pressure-solver mesh size, the hand-picked equivalences of Fig. 3:
//
//	28M cells  -> 512,000 cells, 100 particles/cell, 50,000 steps
//	84M cells  -> 512,000 cells, 300 particles/cell, 50,000 steps
//	380M cells -> 512,000 cells, 1,800 particles/cell, 50,000 steps
//
// Other mesh sizes interpolate the particle loading linearly in mesh
// cells, pinned to the published anchors.
func BaseSTC(meshCells int64) Config {
	ppc := int(float64(meshCells) * 100.0 / 28e6)
	switch {
	case meshCells == 28_000_000:
		ppc = 100
	case meshCells == 84_000_000:
		ppc = 300
	case meshCells == 380_000_000:
		ppc = 1800
	}
	if ppc < 1 {
		ppc = 1
	}
	// Per-case particle weight, the hand-tuned part of the equivalence
	// (the paper hand-picks the configurations per target case; see
	// DESIGN.md par.6 on calibration). The anchors are calibrated against
	// the measured pressure-solver proxy: 1.30 @ 100 ppc, 1.60 @ 300 ppc,
	// and 1.11 @ 1,800 ppc (the paper's 380M anchor uses disproportionately
	// many particles: 18x the 28M loading for 13.6x the mesh).
	var weight float64
	switch {
	case ppc <= 100:
		weight = 1.30
	case ppc <= 300:
		weight = 1.30 + 0.30*(float64(ppc)-100)/200
	case ppc <= 1800:
		weight = 1.60 - 0.49*(float64(ppc)-300)/1500
	default:
		weight = 1.11
	}
	return Config{Cells: 512_000, ParticlesPerCell: ppc, Steps: 50_000,
		ParticleWeight: weight, FieldEvery: 2}
}

// OptimizedSTC returns the synthetic configuration matching the
// *optimised* pressure solver of Section IV-C: 1.18M cells, 60,000
// particles per cell, 450 time-steps.
func OptimizedSTC() Config {
	// The particle weight maps this configuration's enormous macro-particle
	// population (7.1e10) onto the optimised pressure solver's run-time on
	// the virtual machine, as the paper's authors tuned theirs to ARCHER2.
	return Config{Cells: 1_180_000, ParticlesPerCell: 60_000, Steps: 450,
		FieldEvery: 2, ParticleWeight: 0.058}
}

// ScaleOpts bound the in-memory working set of a run; costs are always
// charged for the full Config. The zero value runs the configuration
// exactly (no capping) — used by the physics tests.
type ScaleOpts struct {
	// MaxCellsPerRank caps the allocated grid slice per rank.
	MaxCellsPerRank int
	// MaxParticlesPerRank caps the allocated particles per rank.
	MaxParticlesPerRank int
	// SampleSteps runs only this many real steps, scaling the run to
	// Config.Steps (time-steps are statistically homogeneous).
	SampleSteps int
}

// Production returns the capping used for large harness runs (sized so
// 30,000+-rank standalone sweeps stay within a few GB of host memory).
func Production() ScaleOpts {
	return ScaleOpts{MaxCellsPerRank: 4096, MaxParticlesPerRank: 4096, SampleSteps: 4}
}
