package simpic

import (
	"fmt"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

// The 1-D Poisson solve phi'' = -rho (eps0 = 1) is discretised on grid
// nodes 0..N with Dirichlet walls phi[0] = phi[N] = 0, giving the
// tridiagonal system (-1, 2, -1) phi = dx^2 rho at the interior nodes.
//
// In parallel the domain is sliced into contiguous node ranges and solved
// directly with a substructuring method (Wang's algorithm family): every
// rank eliminates its interior unknowns with three local Thomas solves,
// the interface unknowns (first node of each rank r > 0) form a reduced
// tridiagonal system of size P-1 solved by distributed parallel cyclic
// reduction (log2 P rounds of small neighbour exchanges), and interiors
// are recovered by back-substitution. The log-depth exchange chain plus
// the per-step reductions are the field solver's inherent scaling limit.

// thomas solves a tridiagonal system in place: sub/diag/super are the
// three diagonals (sub[0] and super[n-1] unused), d the right-hand side.
// Returns the solution in a fresh slice.
func thomas(sub, diag, super, d []float64) []float64 {
	n := len(diag)
	if n == 0 {
		return nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	cp[0] = super[0] / diag[0]
	dp[0] = d[0] / diag[0]
	for i := 1; i < n; i++ {
		m := diag[i] - sub[i]*cp[i-1]
		if i < n-1 {
			cp[i] = super[i] / m
		}
		dp[i] = (d[i] - sub[i]*dp[i-1]) / m
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x
}

// solveSegment solves the constant-coefficient (-1, 2, -1) system of size
// n for the given right-hand side.
func solveSegment(rhs []float64) []float64 {
	n := len(rhs)
	sub := make([]float64, n)
	diag := make([]float64, n)
	super := make([]float64, n)
	for i := range diag {
		sub[i], diag[i], super[i] = -1, 2, -1
	}
	return thomas(sub, diag, super, rhs)
}

// fieldSolver holds the per-rank decomposition of the Poisson problem.
type fieldSolver struct {
	comm *mpi.Comm
	n    int // global cells; nodes 0..n
	lo   int // first owned node (wall nodes never owned)
	hi   int // one past last owned node
	// Interface bookkeeping: rank r > 0 owns the interface node lo; its
	// interior segment is [segLo, hi).
	segLo int
	// cellScale converts simulated per-rank field work to true work.
	cellScale float64
	tag       int
}

// newFieldSolver sets up the node ownership for the global problem of n
// cells across the communicator. Each rank must own at least 2 nodes.
func newFieldSolver(c *mpi.Comm, n int, cellScale float64, tag int) (*fieldSolver, error) {
	p, r := c.Size(), c.Rank()
	if n < 2*p {
		return nil, fmt.Errorf("simpic: %d cells cannot be split over %d ranks (need >= 2 per rank)", n, p)
	}
	lo := r * n / p
	hi := (r + 1) * n / p
	if r == 0 {
		lo = 1 // node 0 is the wall
	}
	if r == p-1 {
		hi = n // node n is the wall; own up to n-1
	}
	segLo := lo
	if r > 0 {
		segLo = lo + 1 // node lo is this rank's interface unknown
	}
	return &fieldSolver{comm: c, n: n, lo: lo, hi: hi, segLo: segLo, cellScale: cellScale, tag: tag}, nil
}

func (fs *fieldSolver) ownedNodes() int { return fs.hi - fs.lo }

// pcr solves the distributed interface tridiagonal system by parallel
// cyclic reduction. Ranks 1..p-1 each own one equation
// a*v_{r-1} + b*v_r + c*v_{r+1} = d; every round doubles the coupling
// stride with one 4-double exchange per direction, and out-of-range
// neighbours act as identity equations. Returns v_r. Must be called by
// exactly the ranks 1..p-1.
func (fs *fieldSolver) pcr(a, b, c, d float64) float64 {
	p, r := fs.comm.Size(), fs.comm.Rank()
	np := p - 1
	for s := 1; s < np; s *= 2 {
		lo, hi := r-s, r+s
		eq := []float64{a, b, c, d}
		if lo >= 1 {
			fs.comm.Send(lo, fs.tag+2, eq)
		}
		if hi <= p-1 {
			fs.comm.Send(hi, fs.tag+2, eq)
		}
		la, lb, lc, ld := 0.0, 1.0, 0.0, 0.0
		ua, ub, uc, ud := 0.0, 1.0, 0.0, 0.0
		if lo >= 1 {
			e, _, _ := fs.comm.Recv(lo, fs.tag+2)
			la, lb, lc, ld = e[0], e[1], e[2], e[3]
		}
		if hi <= p-1 {
			e, _, _ := fs.comm.Recv(hi, fs.tag+2)
			ua, ub, uc, ud = e[0], e[1], e[2], e[3]
		}
		alpha := a / lb
		gamma := c / ub
		a, c = -alpha*la, -gamma*uc
		b = b - alpha*lc - gamma*ua
		d = d - alpha*ld - gamma*ud
		fs.comm.Compute(cluster.Work{Flops: 16, Bytes: 64})
	}
	return d / b
}

// Solve computes phi at the owned nodes from the owned right-hand side
// f[i] = dx^2 * rho[i] (indexed from fs.lo). Returns phi over the owned
// range plus the two ghost nodes (phi[lo-1] and phi[hi]) needed for the
// E-field stencil, as (phiOwned, ghostLeft, ghostRight).
func (fs *fieldSolver) Solve(f []float64) (phi []float64, ghostL, ghostR float64) {
	if len(f) != fs.ownedNodes() {
		panic(fmt.Sprintf("simpic: Solve rhs length %d, want %d", len(f), fs.ownedNodes()))
	}
	p, r := fs.comm.Size(), fs.comm.Rank()

	// Local segment solves: particular plus two harmonic responses.
	m := fs.hi - fs.segLo
	segF := f[fs.segLo-fs.lo:]
	y0 := solveSegment(segF)
	eL := make([]float64, m)
	eR := make([]float64, m)
	if m > 0 {
		eL[0] = 1
		eR[m-1] = 1
	}
	yL := solveSegment(eL)
	yR := solveSegment(eR)
	fs.comm.Compute(cluster.Work{Flops: 6 * float64(m) * fs.cellScale, Bytes: 30 * float64(m) * fs.cellScale})

	// The interface unknowns v_i (i = 1..p-1, owned by rank i at node
	// lo(i)) form a strictly diagonally dominant tridiagonal system.
	// Each rank assembles its own equation from the left neighbour's
	// segment responses (one neighbour message), then the system is
	// solved with distributed parallel cyclic reduction: ceil(log2(p-1))
	// rounds of stride-doubling 4-double exchanges. This is the
	// logarithmic-depth substructuring that keeps the field solve from
	// becoming an O(p) serial fraction.
	var uL, uR float64
	if p > 1 {
		// Segment responses travel one rank to the right.
		if r < p-1 {
			fs.comm.Send(r+1, fs.tag+1, []float64{y0[0], y0[m-1], yL[0], yL[m-1], yR[0], yR[m-1]})
		}
		if r > 0 {
			left, _, _ := fs.comm.Recv(r-1, fs.tag+1)
			// Equation: a*v_{r-1} + b*v_r + c*v_{r+1} = d.
			a := -left[3]            // left segment's yL response at its last node
			b := 2 - left[5] - yL[0] // minus yR(left, last) and own yL(first)
			c := -yR[0]
			dRHS := f[0] + left[1] + y0[0]
			if r == 1 {
				a = 0 // previous boundary is the wall
			}
			if r == p-1 {
				c = 0 // next boundary is the wall
			}
			uL = fs.pcr(a, b, c, dRHS)
		}
		// Each rank needs v_{r+1} too (the right ghost of its segment).
		if r > 0 {
			fs.comm.Send(r-1, fs.tag+3, []float64{uL})
		}
		if r < p-1 {
			d, _, _ := fs.comm.Recv(r+1, fs.tag+3)
			uR = d[0]
		}
	}
	phi = make([]float64, fs.ownedNodes())
	if r > 0 {
		phi[0] = uL // the owned interface node
	}
	for i := 0; i < m; i++ {
		phi[fs.segLo-fs.lo+i] = y0[i] + uL*yL[i] + uR*yR[i]
	}
	fs.comm.Compute(cluster.Work{Flops: 2 * float64(m) * fs.cellScale, Bytes: 12 * float64(m) * fs.cellScale})

	// Ghosts for the E-field stencil. The right ghost (node hi) is the
	// next rank's interface unknown, already known from the reduced
	// solve; the left ghost (node lo-1) is the left neighbour's last
	// owned node and travels by one neighbour message.
	ghostL, ghostR = 0.0, 0.0 // walls by default
	if r < p-1 {
		ghostR = uR
		fs.comm.Send(r+1, fs.tag, []float64{phi[len(phi)-1]})
	}
	if r > 0 {
		d, _, _ := fs.comm.Recv(r-1, fs.tag)
		ghostL = d[0]
	}
	return phi, ghostL, ghostR
}
