package simpic

import (
	"fmt"
	"math"
	"math/rand"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

// Message tags used by a SIMPIC run.
const (
	tagGhost = 10
	tagRhoL  = 11
	tagRhoR  = 12
	tagMigL  = 13
	tagMigR  = 14
)

// Per-particle work constants (calibrated; see DESIGN.md §6). A PIC step
// streams each particle several times (deposit, gather, push) with
// indirect grid accesses.
// Calibrated so the Base-STC totals land on the pressure-solver proxy's
// run-times (Fig. 3/4): one SIMPIC step must cost ~1/5000th of a
// production pressure step (50,000 SIMPIC steps stand in for 10 pressure
// steps).
const (
	particleFlopsPerStep = 3.0
	particleBytesPerStep = 4.2
)

// Sim is the per-rank state of a SIMPIC run.
type Sim struct {
	comm *mpi.Comm
	cfg  Config

	// Simulated (allocated) extents vs true extents.
	cells     int // true global cells
	simCells  int // allocated cells on this rank
	trueCells int // true cells on this rank
	cellLo    int // first true cell owned
	dx        float64
	dt        float64

	// Particle state (structure-of-arrays).
	px, pv []float64

	// Scaling factors: true work per simulated unit.
	cellScale float64
	partScale float64
	trueParts float64 // true particles this rank represents

	field   *fieldSolver
	rng     *rand.Rand
	stepNum int

	// Cached field for sub-cycled solves (FieldEvery > 1).
	cachePhi         []float64
	cacheGL, cacheGR float64

	// Diagnostics.
	Absorbed int64
}

// Stats summarises a completed SIMPIC run on one rank.
type Stats struct {
	StepsRun      int
	ScaledSteps   int // the full-configuration step count represented
	FinalParts    int
	KineticEnergy float64
	// SetupTime is the virtual time consumed before stepping began (max
	// over ranks). Harnesses that sample a subset of the steps must scale
	// only the stepping phase, not the one-off setup — the paper observes
	// the same amortisation effect in real SIMPIC (Section V-C).
	SetupTime float64
}

// New builds the per-rank simulation state. Collective over c.
func New(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, r := c.Size(), c.Rank()
	if cfg.Cells < 2*p {
		return nil, fmt.Errorf("simpic: %d cells over %d ranks leaves under 2 cells/rank", cfg.Cells, p)
	}
	s := &Sim{comm: c, cfg: cfg, cells: cfg.Cells}
	s.cellLo = r * cfg.Cells / p
	cellHi := (r + 1) * cfg.Cells / p
	s.trueCells = cellHi - s.cellLo
	s.simCells = s.trueCells
	if sc.MaxCellsPerRank > 0 && s.simCells > sc.MaxCellsPerRank {
		s.simCells = sc.MaxCellsPerRank
	}
	s.cellScale = float64(s.trueCells) / float64(s.simCells)
	s.dx = cfg.Length / float64(cfg.Cells)
	s.dt = cfg.DtScale * s.dx / cfg.VTherm

	simParts := s.simCells * cfg.ParticlesPerCell
	if sc.MaxParticlesPerRank > 0 && simParts > sc.MaxParticlesPerRank {
		simParts = sc.MaxParticlesPerRank
	}
	if simParts < 1 {
		simParts = 1
	}
	s.trueParts = float64(s.trueCells) * float64(cfg.ParticlesPerCell)
	s.partScale = s.trueParts / float64(simParts)

	// The field solver works on the *simulated* grid: conceptually each
	// rank simulates a representative slice; ghost/interface traffic has
	// true (small) sizes anyway.
	fsolver, err := newFieldSolver(c, cfg.Cells, s.cellScale, tagGhost)
	if err != nil {
		return nil, err
	}
	s.field = fsolver

	// Load particles uniformly over the *owned true* slab with thermal
	// velocities, deterministically per rank.
	s.rng = rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
	slabLo := float64(s.cellLo) * s.dx
	slabW := float64(s.trueCells) * s.dx
	s.px = make([]float64, simParts)
	s.pv = make([]float64, simParts)
	for i := range s.px {
		s.px[i] = slabLo + s.rng.Float64()*slabW
		s.pv[i] = cfg.VTherm * s.rng.NormFloat64()
	}
	// Loading cost: one pass over the true particle population.
	c.Compute(cluster.Work{Flops: 8 * s.trueParts, Bytes: 32 * s.trueParts})
	return s, nil
}

// slabBounds returns this rank's spatial ownership [lo, hi).
func (s *Sim) slabBounds() (lo, hi float64) {
	p, r := s.comm.Size(), s.comm.Rank()
	return float64(r*s.cells/p) * s.dx, float64((r+1)*s.cells/p) * s.dx
}

// depositCharge accumulates CIC charge density on the owned nodes
// [field.lo, field.hi) and resolves shared boundary nodes with the
// neighbours. The returned slice is the Poisson RHS dx^2*rho at owned
// nodes, weighted so the scaled-down particle set represents the true
// charge.
func (s *Sim) depositCharge() []float64 {
	// Particles of this rank only touch nodes [cellLo, cellHi]; allocate
	// exactly that window (never the global grid).
	p, r := s.comm.Size(), s.comm.Rank()
	cellHi := (r + 1) * s.cells / p
	rho := make([]float64, s.trueCells+1) // window node i -> global cellLo+i
	invDx := 1.0 / s.dx
	w := s.partScale / float64(s.cfg.ParticlesPerCell) // unit mean density
	for i := range s.px {
		xc := s.px[i] * invDx
		j := int(xc)
		if j < s.cellLo {
			j = s.cellLo
		}
		if j >= cellHi {
			j = cellHi - 1
		}
		frac := xc - float64(j)
		rho[j-s.cellLo] += (1 - frac) * w
		rho[j-s.cellLo+1] += frac * w
	}
	s.chargeParticleWork(0.4) // deposit is ~40% of the per-step particle work
	// The slab-boundary node cellHi is owned by the right neighbour: send
	// our partial sum right, and fold the left neighbour's into our first
	// node.
	if r < p-1 {
		s.comm.Send(r+1, tagRhoR, []float64{rho[s.trueCells]})
	}
	if r > 0 {
		d, _, _ := s.comm.Recv(r-1, tagRhoR)
		rho[0] += d[0]
	}
	// Poisson RHS at the owned nodes [field.lo, field.hi).
	f := make([]float64, s.field.ownedNodes())
	dx2 := s.dx * s.dx
	for i := range f {
		f[i] = dx2 * rho[s.field.lo-s.cellLo+i]
	}
	return f
}

// pushParticles gathers E to the particles and advances them leapfrog,
// then migrates the ones that left the slab. phi spans the owned nodes,
// with ghost potentials for the stencil ends. Returns field energy.
func (s *Sim) pushParticles(phi []float64, ghostL, ghostR float64) {
	loNode := s.field.lo
	nOwned := len(phi)
	// Electric field at owned nodes: E = -dphi/dx (central difference).
	e := make([]float64, nOwned)
	inv2dx := 1.0 / (2 * s.dx)
	for i := 0; i < nOwned; i++ {
		var pm, pp float64
		if i == 0 {
			pm = ghostL
		} else {
			pm = phi[i-1]
		}
		if i == nOwned-1 {
			pp = ghostR
		} else {
			pp = phi[i+1]
		}
		e[i] = (pm - pp) * inv2dx
	}
	// Gather+push. Charge/mass = -1 (electrons) in scaled units.
	const qm = -1.0
	invDx := 1.0 / s.dx
	for i := range s.px {
		xc := s.px[i] * invDx
		j := int(xc)
		frac := xc - float64(j)
		// Node indices j and j+1 relative to owned range; clamp into the
		// owned+ghost window (particles are inside the slab).
		var e0, e1 float64
		k := j - loNode
		switch {
		case k < 0:
			e0, e1 = e[0], e[0]
		case k >= nOwned-1:
			e0, e1 = e[nOwned-1], e[nOwned-1]
		default:
			e0, e1 = e[k], e[k+1]
		}
		ef := (1-frac)*e0 + frac*e1
		s.pv[i] += qm * ef * s.dt
		s.px[i] += s.pv[i] * s.dt
	}
	s.chargeParticleWork(0.6) // gather+push is ~60% of per-step particle work
	s.migrate()
}

// chargeParticleWork charges `fraction` of one full step of per-particle
// work, scaled to the true particle population and weight.
func (s *Sim) chargeParticleWork(fraction float64) {
	w := s.cfg.ParticleWeight
	if w == 0 {
		w = 1
	}
	s.comm.Compute(cluster.Work{
		Flops: particleFlopsPerStep * fraction * s.trueParts * w,
		Bytes: particleBytesPerStep * fraction * s.trueParts * w,
	})
}

// migrate exchanges particles that crossed slab boundaries and reflects
// at the domain walls.
func (s *Sim) migrate() {
	p, r := s.comm.Size(), s.comm.Rank()
	lo, hi := s.slabBounds()
	var keepX, keepV, leftBuf, rightBuf []float64
	for i := range s.px {
		x := s.px[i]
		// Reflect at the global walls.
		if x < 0 {
			x = -x
			s.pv[i] = -s.pv[i]
		}
		if x > s.cfg.Length {
			x = 2*s.cfg.Length - x
			s.pv[i] = -s.pv[i]
		}
		switch {
		case x < lo && r > 0:
			leftBuf = append(leftBuf, x, s.pv[i])
		case x >= hi && r < p-1:
			rightBuf = append(rightBuf, x, s.pv[i])
		default:
			keepX = append(keepX, x)
			keepV = append(keepV, s.pv[i])
		}
	}
	if p > 1 {
		// Exchange with both neighbours (empty messages keep the pattern
		// uniform). Virtual sizes reflect the true migrant population.
		vbytes := func(buf []float64) int { return int(float64(len(buf)) * 8 * s.partScale) }
		if r > 0 {
			s.comm.SendVirtual(r-1, tagMigL, leftBuf, vbytes(leftBuf))
		}
		if r < p-1 {
			s.comm.SendVirtual(r+1, tagMigR, rightBuf, vbytes(rightBuf))
		}
		if r < p-1 {
			d, _, _ := s.comm.Recv(r+1, tagMigL)
			keepX, keepV = appendPairs(keepX, keepV, d)
		}
		if r > 0 {
			d, _, _ := s.comm.Recv(r-1, tagMigR)
			keepX, keepV = appendPairs(keepX, keepV, d)
		}
	}
	s.px, s.pv = keepX, keepV
}

func appendPairs(xs, vs, pairs []float64) ([]float64, []float64) {
	for i := 0; i+1 < len(pairs); i += 2 {
		xs = append(xs, pairs[i])
		vs = append(vs, pairs[i+1])
	}
	return xs, vs
}

// diagEvery is the diagnostics interval in steps (energy reductions).
const diagEvery = 10

// Step advances the simulation one time-step. The field is re-solved
// every FieldEvery steps; in between the cached field pushes particles.
func (s *Sim) Step() {
	every := s.cfg.FieldEvery
	if every < 1 {
		every = 1
	}
	if s.cachePhi == nil || s.stepNum%every == 0 {
		f := s.depositCharge()
		s.cachePhi, s.cacheGL, s.cacheGR = s.field.Solve(f)
	}
	s.pushParticles(s.cachePhi, s.cacheGL, s.cacheGR)
	// Periodic diagnostics (field/kinetic energy), as in SIMPIC proper:
	// a global reduction on the critical path every few steps.
	s.stepNum++
	if s.stepNum%diagEvery == 0 {
		ke := 0.0
		for _, v := range s.pv {
			ke += v * v
		}
		s.comm.AllreduceScalar(ke, mpi.Sum)
	}
}

// Run executes the configured number of steps (or the ScaleOpts sample)
// and returns the rank's stats. The caller reads virtual run-time from
// the surrounding mpi.Run stats; when sampling, ScaleRuntime converts a
// sampled run-time to the full configuration.
func Run(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Stats, error) {
	s, err := New(c, cfg, sc)
	if err != nil {
		return nil, err
	}
	setup := c.AllreduceScalar(c.Clock(), mpi.Max)
	steps := cfg.Steps
	if sc.SampleSteps > 0 && sc.SampleSteps < steps {
		steps = sc.SampleSteps
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
	ke := 0.0
	for _, v := range s.pv {
		ke += 0.5 * v * v
	}
	return &Stats{
		StepsRun:      steps,
		ScaledSteps:   cfg.Steps,
		FinalParts:    len(s.px),
		KineticEnergy: ke * s.partScale,
		SetupTime:     setup,
	}, nil
}

// StepBlock runs `real` micro-steps and stretches their virtual cost to
// `represented` micro-steps, preserving the compute/communication split.
// Coupled drivers use it so a few executed steps stand in for the
// thousands of pressure-solver-equivalent micro-steps between coupling
// exchanges.
func (s *Sim) StepBlock(real, represented int) {
	if real < 1 {
		real = 1
	}
	// Barrier-align the block so every rank measures the same block
	// duration: each rank then stretches by the same amount and the
	// clocks stay aligned — otherwise the stretch of a slow rank becomes
	// wait time on its neighbours' NEXT block and compounds
	// exponentially through the exchange chain.
	s.comm.Barrier()
	comp, comm := s.comm.ComputeTime(), s.comm.CommTime()
	for i := 0; i < real; i++ {
		s.Step()
	}
	// Stretch first (the block's own cost only — the alignment barrier's
	// latency must not be multiplied), then re-align the clocks.
	if represented > real {
		s.comm.StretchSince(comp, comm, float64(represented)/float64(real))
	}
	s.comm.Barrier()
}

// SampledFraction returns full-run steps / executed steps for run-time
// scaling (>= 1).
func SampledFraction(cfg Config, sc ScaleOpts) float64 {
	if sc.SampleSteps > 0 && sc.SampleSteps < cfg.Steps {
		return float64(cfg.Steps) / float64(sc.SampleSteps)
	}
	return 1
}

// TotalCharge returns the global sum of deposited charge for diagnostics
// (collective).
func (s *Sim) TotalCharge() float64 {
	f := s.depositCharge()
	local := 0.0
	for _, v := range f {
		local += v
	}
	local /= s.dx * s.dx
	return s.comm.AllreduceScalar(local, mpi.Sum)
}

// ParticleCount returns the global particle count (collective).
func (s *Sim) ParticleCount() int {
	return s.comm.AllreduceInt(len(s.px), mpi.Sum)
}

// BoundarySample extracts n representative interface values (particle
// velocities, cycling) for coupling transfers.
func (s *Sim) BoundarySample(n int) []float64 {
	out := make([]float64, n)
	if n == 0 || len(s.pv) == 0 {
		return out
	}
	for i := range out {
		out[i] = s.pv[i%len(s.pv)]
	}
	return out
}

// AbsorbBoundary weakly forces the first particles' velocities with
// values received from a coupled neighbour instance.
func (s *Sim) AbsorbBoundary(vals []float64) {
	const eps = 1e-6
	for i, v := range vals {
		if i >= len(s.pv) {
			break
		}
		if v > -1 && v < 1 {
			s.pv[i] = (1-eps)*s.pv[i] + eps*v
		}
	}
}

// maxAbsVelocity reports the global max |v| (collective); used by tests
// to confirm the CFL-ish condition holds.
func (s *Sim) maxAbsVelocity() float64 {
	m := 0.0
	for _, v := range s.pv {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return s.comm.AllreduceScalar(m, mpi.Max)
}
