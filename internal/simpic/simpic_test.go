package simpic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

func cfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second}
}

func TestThomasSolvesTridiagonal(t *testing.T) {
	n := 50
	sub := make([]float64, n)
	diag := make([]float64, n)
	super := make([]float64, n)
	d := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		sub[i], diag[i], super[i] = -1, 2.5, -1
		d[i] = rng.NormFloat64()
	}
	x := thomas(sub, diag, super, d)
	for i := 0; i < n; i++ {
		s := diag[i] * x[i]
		if i > 0 {
			s += sub[i] * x[i-1]
		}
		if i < n-1 {
			s += super[i] * x[i+1]
		}
		if math.Abs(s-d[i]) > 1e-10 {
			t.Fatalf("thomas residual at %d: %v", i, s-d[i])
		}
	}
}

func TestThomasEmpty(t *testing.T) {
	if x := thomas(nil, nil, nil, nil); x != nil {
		t.Error("empty system should give nil")
	}
}

// serialPoisson solves the full tridiagonal system directly.
func serialPoisson(f []float64) []float64 {
	n := len(f)
	sub := make([]float64, n)
	diag := make([]float64, n)
	super := make([]float64, n)
	for i := range diag {
		sub[i], diag[i], super[i] = -1, 2, -1
	}
	return thomas(sub, diag, super, f)
}

func TestParallelFieldSolveMatchesSerial(t *testing.T) {
	const cells = 64
	// Global RHS at interior nodes 1..cells-1.
	rng := rand.New(rand.NewSource(2))
	f := make([]float64, cells-1)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	want := serialPoisson(f)

	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		_, err := mpi.Run(p, cfg(), func(c *mpi.Comm) error {
			fs, err := newFieldSolver(c, cells, 1, 1)
			if err != nil {
				return err
			}
			local := make([]float64, fs.ownedNodes())
			for i := range local {
				local[i] = f[fs.lo-1+i] // f is indexed from node 1
			}
			phi, gl, gr := fs.Solve(local)
			for i := range phi {
				if math.Abs(phi[i]-want[fs.lo-1+i]) > 1e-9 {
					return fmt.Errorf("p=%d rank %d: phi[node %d] = %v, want %v",
						p, c.Rank(), fs.lo+i, phi[i], want[fs.lo-1+i])
				}
			}
			// Ghosts must match the serial solution too.
			if fs.lo > 1 {
				if math.Abs(gl-want[fs.lo-2]) > 1e-9 {
					return fmt.Errorf("p=%d rank %d: ghostL %v, want %v", p, c.Rank(), gl, want[fs.lo-2])
				}
			} else if gl != 0 {
				return fmt.Errorf("wall ghostL = %v", gl)
			}
			if fs.hi < cells {
				if math.Abs(gr-want[fs.hi-1]) > 1e-9 {
					return fmt.Errorf("p=%d rank %d: ghostR %v, want %v", p, c.Rank(), gr, want[fs.hi-1])
				}
			} else if gr != 0 {
				return fmt.Errorf("wall ghostR = %v", gr)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFieldSolverRejectsTooManyRanks(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		if _, err := newFieldSolver(c, 6, 1, 1); err == nil {
			return fmt.Errorf("6 cells over 4 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cells: 1, ParticlesPerCell: 1, Steps: 1},
		{Cells: 10, ParticlesPerCell: 0, Steps: 1},
		{Cells: 10, ParticlesPerCell: 1, Steps: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := (Config{Cells: 10, ParticlesPerCell: 1, Steps: 1}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestBaseSTCAnchors(t *testing.T) {
	for _, tc := range []struct {
		mesh int64
		ppc  int
	}{{28_000_000, 100}, {84_000_000, 300}, {380_000_000, 1800}} {
		c := BaseSTC(tc.mesh)
		if c.Cells != 512_000 || c.ParticlesPerCell != tc.ppc || c.Steps != 50_000 {
			t.Errorf("BaseSTC(%d) = %+v", tc.mesh, c)
		}
	}
	// Interpolation between anchors stays sane and monotone.
	if BaseSTC(56_000_000).ParticlesPerCell != 200 {
		t.Errorf("interpolated ppc = %d, want 200", BaseSTC(56_000_000).ParticlesPerCell)
	}
	if BaseSTC(100).ParticlesPerCell < 1 {
		t.Error("tiny mesh must clamp to >= 1 ppc")
	}
}

func TestOptimizedSTCMatchesPaper(t *testing.T) {
	c := OptimizedSTC()
	if c.Cells != 1_180_000 || c.ParticlesPerCell != 60_000 || c.Steps != 450 {
		t.Errorf("OptimizedSTC = %+v", c)
	}
}

func TestParticleCountConservedWithReflectingWalls(t *testing.T) {
	c := Config{Cells: 64, ParticlesPerCell: 20, Steps: 30, Seed: 3}
	for _, p := range []int{1, 2, 4} {
		_, err := mpi.Run(p, cfg(), func(comm *mpi.Comm) error {
			s, err := New(comm, c, ScaleOpts{})
			if err != nil {
				return err
			}
			want := s.ParticleCount()
			for i := 0; i < c.Steps; i++ {
				s.Step()
			}
			if got := s.ParticleCount(); got != want {
				return fmt.Errorf("p=%d: particles %d -> %d", p, want, got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestChargeConservedAcrossMigration(t *testing.T) {
	c := Config{Cells: 48, ParticlesPerCell: 10, Steps: 1, Seed: 4}
	_, err := mpi.Run(3, cfg(), func(comm *mpi.Comm) error {
		s, err := New(comm, c, ScaleOpts{})
		if err != nil {
			return err
		}
		before := s.TotalCharge()
		for i := 0; i < 10; i++ {
			s.Step()
		}
		after := s.TotalCharge()
		// Charge deposited to wall nodes is not part of the unknowns, so
		// allow a small leak tolerance proportional to wall population.
		if math.Abs(after-before) > 0.05*math.Abs(before) {
			return fmt.Errorf("charge drifted: %v -> %v", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelMatchesSerialPhysics(t *testing.T) {
	// Kinetic energy after N steps should agree between 1 and 4 ranks to
	// within a loose tolerance (identical loading is not possible since
	// loading is per-rank, so compare statistically: same config, same
	// thermal scale).
	c := Config{Cells: 128, ParticlesPerCell: 50, Steps: 50, Seed: 5}
	energy := func(p int) float64 {
		var out float64
		_, err := mpi.Run(p, cfg(), func(comm *mpi.Comm) error {
			st, err := Run(comm, c, ScaleOpts{})
			if err != nil {
				return err
			}
			tot := comm.AllreduceScalar(st.KineticEnergy, mpi.Sum)
			if comm.Rank() == 0 {
				out = tot
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	e1, e4 := energy(1), energy(4)
	if e1 <= 0 || e4 <= 0 {
		t.Fatalf("non-positive kinetic energy: %v %v", e1, e4)
	}
	if ratio := e4 / e1; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("kinetic energy differs wildly across rank counts: %v vs %v", e1, e4)
	}
}

func TestVelocitiesBounded(t *testing.T) {
	// The electrostatic field of a near-uniform plasma must not blow up.
	c := Config{Cells: 64, ParticlesPerCell: 30, Steps: 100, Seed: 6}
	_, err := mpi.Run(2, cfg(), func(comm *mpi.Comm) error {
		s, err := New(comm, c, ScaleOpts{})
		if err != nil {
			return err
		}
		for i := 0; i < c.Steps; i++ {
			s.Step()
		}
		if vmax := s.maxAbsVelocity(); vmax > 100*c.withDefaults().VTherm {
			return fmt.Errorf("velocities blew up: %v", vmax)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaleOptsCapsMemoryButChargesTrueWork(t *testing.T) {
	c := Config{Cells: 4096, ParticlesPerCell: 200, Steps: 2, Seed: 7}
	timeFor := func(sc ScaleOpts) float64 {
		st, err := mpi.Run(2, cfg(), func(comm *mpi.Comm) error {
			_, err := Run(comm, c, sc)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	full := timeFor(ScaleOpts{})
	capped := timeFor(ScaleOpts{MaxParticlesPerRank: 500, MaxCellsPerRank: 512})
	// Charged virtual time must be roughly the same despite the tiny
	// working set (within 20%: particle distribution effects are small).
	if ratio := capped / full; ratio < 0.5 || ratio > 1.5 {
		t.Errorf("scaled run virtual time off: capped %v vs full %v", capped, full)
	}
}

func TestSampledFraction(t *testing.T) {
	c := Config{Cells: 10, ParticlesPerCell: 1, Steps: 1000}
	if f := SampledFraction(c, ScaleOpts{SampleSteps: 10}); f != 100 {
		t.Errorf("fraction = %v, want 100", f)
	}
	if f := SampledFraction(c, ScaleOpts{}); f != 1 {
		t.Errorf("fraction = %v, want 1", f)
	}
	if f := SampledFraction(c, ScaleOpts{SampleSteps: 5000}); f != 1 {
		t.Errorf("oversampling fraction = %v, want 1", f)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := Config{Cells: 64, ParticlesPerCell: 10, Steps: 20, Seed: 8}
	once := func() (float64, float64) {
		var ke, elapsed float64
		st, err := mpi.Run(3, cfg(), func(comm *mpi.Comm) error {
			s, err := Run(comm, c, ScaleOpts{})
			if err != nil {
				return err
			}
			tot := comm.AllreduceScalar(s.KineticEnergy, mpi.Sum)
			if comm.Rank() == 0 {
				ke = tot
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		elapsed = st.Elapsed
		return ke, elapsed
	}
	ke1, t1 := once()
	ke2, t2 := once()
	if ke1 != ke2 || t1 != t2 {
		t.Errorf("run not deterministic: ke %v/%v elapsed %v/%v", ke1, ke2, t1, t2)
	}
}

func TestMoreParticlesCostMoreTime(t *testing.T) {
	run := func(ppc int) float64 {
		c := Config{Cells: 256, ParticlesPerCell: ppc, Steps: 3, Seed: 9}
		st, err := mpi.Run(2, cfg(), func(comm *mpi.Comm) error {
			_, err := Run(comm, c, ScaleOpts{})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if !(run(100) > run(10)) {
		t.Error("10x particles should cost more virtual time")
	}
}

func TestBoundarySampleAndAbsorb(t *testing.T) {
	c := Config{Cells: 64, ParticlesPerCell: 5, Steps: 1, Seed: 10}
	_, err := mpi.Run(1, cfg(), func(comm *mpi.Comm) error {
		s, err := New(comm, c, ScaleOpts{})
		if err != nil {
			return err
		}
		vals := s.BoundarySample(7)
		if len(vals) != 7 {
			return fmt.Errorf("sample length %d", len(vals))
		}
		before := s.pv[0]
		s.AbsorbBoundary([]float64{0.5})
		if s.pv[0] == before {
			return fmt.Errorf("absorb did not nudge velocity")
		}
		// Out-of-range transfers are ignored.
		cur := s.pv[0]
		s.AbsorbBoundary([]float64{99})
		if s.pv[0] != cur {
			return fmt.Errorf("non-physical transfer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldSubcyclingKeepsPhysicsSane(t *testing.T) {
	c := Config{Cells: 64, ParticlesPerCell: 20, Steps: 40, Seed: 11, FieldEvery: 2}
	_, err := mpi.Run(2, cfg(), func(comm *mpi.Comm) error {
		s, err := New(comm, c, ScaleOpts{})
		if err != nil {
			return err
		}
		want := s.ParticleCount()
		for i := 0; i < c.Steps; i++ {
			s.Step()
		}
		if got := s.ParticleCount(); got != want {
			return fmt.Errorf("subcycled run lost particles: %d -> %d", want, got)
		}
		if vmax := s.maxAbsVelocity(); vmax > 100*c.withDefaults().VTherm {
			return fmt.Errorf("subcycled velocities blew up: %v", vmax)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepBlockStretchesCost(t *testing.T) {
	c := Config{Cells: 64, ParticlesPerCell: 10, Steps: 10, Seed: 12}
	elapsed := func(block bool) float64 {
		st, err := mpi.Run(2, cfg(), func(comm *mpi.Comm) error {
			s, err := New(comm, c, ScaleOpts{})
			if err != nil {
				return err
			}
			if block {
				s.StepBlock(1, 100)
			} else {
				s.Step()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	one, hundred := elapsed(false), elapsed(true)
	if ratio := hundred / one; ratio < 20 {
		t.Errorf("StepBlock(1,100) only %vx of a single step", ratio)
	}
}

func TestStepsPerPressureStep(t *testing.T) {
	if got := BaseSTC(28_000_000).StepsPerPressureStep(); got != 5000 {
		t.Errorf("BaseSTC steps/pressure-step = %d, want 5000", got)
	}
	if got := OptimizedSTC().StepsPerPressureStep(); got != 45 {
		t.Errorf("OptimizedSTC steps/pressure-step = %d, want 45", got)
	}
	tiny := Config{Cells: 10, ParticlesPerCell: 1, Steps: 3}
	if got := tiny.StepsPerPressureStep(); got != 1 {
		t.Errorf("tiny config steps/pressure-step = %d, want >= 1", got)
	}
}

func TestBaseSTCWeightAnchors(t *testing.T) {
	// The per-case calibration weights (DESIGN.md par.6).
	for _, tc := range []struct {
		mesh   int64
		weight float64
	}{{28_000_000, 1.30}, {84_000_000, 1.60}, {380_000_000, 1.11}} {
		if w := BaseSTC(tc.mesh).ParticleWeight; math.Abs(w-tc.weight) > 1e-9 {
			t.Errorf("BaseSTC(%d) weight = %v, want %v", tc.mesh, w, tc.weight)
		}
	}
	// Interpolation stays within the anchor envelope.
	for _, mesh := range []int64{40_000_000, 150_000_000, 300_000_000} {
		w := BaseSTC(mesh).ParticleWeight
		if w < 1.0 || w > 1.75 {
			t.Errorf("BaseSTC(%d) weight %v outside envelope", mesh, w)
		}
	}
}
