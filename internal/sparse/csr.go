// Package sparse implements the compressed-sparse-row kernels the paper's
// pressure-solver analysis centres on: SpMV, SpGEMM in both the baseline
// two-pass form and the optimised single-pass sparse-accumulator (SPA)
// form, the identity-block reordering for interpolation operators, and
// the column-renumbering strategies for distributed matrices (Section IV
// of the paper; Park et al. [48]).
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed-sparse-row format. Row i's entries
// are ColIdx/Val[RowPtr[i]:RowPtr[i+1]], with column indices sorted
// ascending within each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Validate checks the structural invariants of the format.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d != Rows+1 (%d)", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Val) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent RowPtr/ColIdx/Val lengths")
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			if c < 0 || c >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
			prev = c
		}
	}
	return nil
}

// FromCOO builds a CSR from triplet form, summing duplicate entries.
func FromCOO(rows, cols int, ri, ci []int, v []float64) *CSR {
	if len(ri) != len(ci) || len(ci) != len(v) {
		panic("sparse: FromCOO triplet arrays differ in length")
	}
	type trip struct {
		r, c int
		v    float64
	}
	ts := make([]trip, len(ri))
	for k := range ri {
		if ri[k] < 0 || ri[k] >= rows || ci[k] < 0 || ci[k] >= cols {
			panic(fmt.Sprintf("sparse: FromCOO entry (%d,%d) out of %dx%d", ri[k], ci[k], rows, cols))
		}
		ts[k] = trip{ri[k], ci[k], v[k]}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].r != ts[b].r {
			return ts[a].r < ts[b].r
		}
		return ts[a].c < ts[b].c
	})
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, len(ts))
	val := make([]float64, 0, len(ts))
	for k := 0; k < len(ts); {
		r, c := ts[k].r, ts[k].c
		sum := 0.0
		for k < len(ts) && ts[k].r == r && ts[k].c == c {
			sum += ts[k].v
			k++
		}
		colIdx = append(colIdx, c)
		val = append(val, sum)
		rowPtr[r+1]++
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Eye returns the n x n identity.
func Eye(n int) *CSR {
	rp := make([]int, n+1)
	ci := make([]int, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		rp[i+1] = i + 1
		ci[i] = i
		v[i] = 1
	}
	return &CSR{Rows: n, Cols: n, RowPtr: rp, ColIdx: ci, Val: v}
}

// MulVec computes y = A x. len(x) must be Cols, len(y) Rows.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims %dx%d with |x|=%d |y|=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += A x.
func (a *CSR) MulVecAdd(x, y []float64) {
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] += s
	}
}

// MulVecWork returns the roofline work of one SpMV: 2 flops per nnz and
// the streamed bytes (vals 8B + cols 8B + x gather 8B per nnz, y 8B/row).
func (a *CSR) MulVecWork() (flops, bytes float64) {
	nnz := float64(a.NNZ())
	return 2 * nnz, 24*nnz + 8*float64(a.Rows)
}

// Transpose returns A^T.
func (a *CSR) Transpose() *CSR {
	rp := make([]int, a.Cols+1)
	for _, c := range a.ColIdx {
		rp[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		rp[i+1] += rp[i]
	}
	ci := make([]int, a.NNZ())
	v := make([]float64, a.NNZ())
	fill := make([]int, a.Cols)
	copy(fill, rp[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			ci[fill[c]] = i
			v[fill[c]] = a.Val[k]
			fill[c]++
		}
	}
	return &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: rp, ColIdx: ci, Val: v}
}

// Diag extracts the main diagonal (zeros where absent).
func (a *CSR) Diag() []float64 {
	d := make([]float64, a.Rows)
	for i := 0; i < a.Rows && i < a.Cols; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				d[i] = a.Val[k]
				break
			}
		}
	}
	return d
}

// At returns A[i,j] (zero if not stored). Linear scan within the row.
func (a *CSR) At(i, j int) float64 {
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		if a.ColIdx[k] == j {
			return a.Val[k]
		}
		if a.ColIdx[k] > j {
			break
		}
	}
	return 0
}

// Add returns alpha*A + beta*B (same dimensions required).
func Add(a, b *CSR, alpha, beta float64) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("sparse: Add dimension mismatch")
	}
	rp := make([]int, a.Rows+1)
	var ci []int
	var v []float64
	for i := 0; i < a.Rows; i++ {
		ka, kb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.ColIdx[ka] < b.ColIdx[kb]):
				ci = append(ci, a.ColIdx[ka])
				v = append(v, alpha*a.Val[ka])
				ka++
			case ka >= ea || b.ColIdx[kb] < a.ColIdx[ka]:
				ci = append(ci, b.ColIdx[kb])
				v = append(v, beta*b.Val[kb])
				kb++
			default:
				ci = append(ci, a.ColIdx[ka])
				v = append(v, alpha*a.Val[ka]+beta*b.Val[kb])
				ka++
				kb++
			}
		}
		rp[i+1] = len(ci)
	}
	return &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: rp, ColIdx: ci, Val: v}
}

// Scale multiplies all values in place and returns the receiver.
func (a *CSR) Scale(s float64) *CSR {
	for k := range a.Val {
		a.Val[k] *= s
	}
	return a
}

// Clone deep-copies the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{Rows: a.Rows, Cols: a.Cols,
		RowPtr: make([]int, len(a.RowPtr)),
		ColIdx: make([]int, len(a.ColIdx)),
		Val:    make([]float64, len(a.Val))}
	copy(b.RowPtr, a.RowPtr)
	copy(b.ColIdx, a.ColIdx)
	copy(b.Val, a.Val)
	return b
}

// EqualWithin reports whether A and B agree entry-wise within tol.
func (a *CSR) EqualWithin(b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ka, kb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for ka < ea || kb < eb {
			var ca, cb int = math.MaxInt, math.MaxInt
			var va, vb float64
			if ka < ea {
				ca, va = a.ColIdx[ka], a.Val[ka]
			}
			if kb < eb {
				cb, vb = b.ColIdx[kb], b.Val[kb]
			}
			switch {
			case ca < cb:
				if math.Abs(va) > tol {
					return false
				}
				ka++
			case cb < ca:
				if math.Abs(vb) > tol {
					return false
				}
				kb++
			default:
				if math.Abs(va-vb) > tol {
					return false
				}
				ka++
				kb++
			}
		}
	}
	return true
}

// Dense expands the matrix for debugging and tests.
func (a *CSR) Dense() [][]float64 {
	out := make([][]float64, a.Rows)
	for i := range out {
		out[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			out[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return out
}

// Poisson1D builds the tridiagonal [-1 2 -1] Laplacian of size n.
func Poisson1D(n int) *CSR {
	var ri, ci []int
	var v []float64
	for i := 0; i < n; i++ {
		if i > 0 {
			ri = append(ri, i)
			ci = append(ci, i-1)
			v = append(v, -1)
		}
		ri = append(ri, i)
		ci = append(ci, i)
		v = append(v, 2)
		if i < n-1 {
			ri = append(ri, i)
			ci = append(ci, i+1)
			v = append(v, -1)
		}
	}
	return FromCOO(n, n, ri, ci, v)
}

// Poisson2D builds the standard 5-point Laplacian on an nx x ny grid.
func Poisson2D(nx, ny int) *CSR {
	n := nx * ny
	var ri, ci []int
	var v []float64
	id := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := id(i, j)
			add := func(c int, x float64) { ri = append(ri, r); ci = append(ci, c); v = append(v, x) }
			if j > 0 {
				add(id(i, j-1), -1)
			}
			if i > 0 {
				add(id(i-1, j), -1)
			}
			add(r, 4)
			if i < nx-1 {
				add(id(i+1, j), -1)
			}
			if j < ny-1 {
				add(id(i, j+1), -1)
			}
		}
	}
	return FromCOO(n, n, ri, ci, v)
}

// Poisson3D builds the 7-point Laplacian on an nx x ny x nz grid.
func Poisson3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	var ri, ci []int
	var v []float64
	id := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := id(i, j, k)
				add := func(c int, x float64) { ri = append(ri, r); ci = append(ci, c); v = append(v, x) }
				if k > 0 {
					add(id(i, j, k-1), -1)
				}
				if j > 0 {
					add(id(i, j-1, k), -1)
				}
				if i > 0 {
					add(id(i-1, j, k), -1)
				}
				add(r, 6)
				if i < nx-1 {
					add(id(i+1, j, k), -1)
				}
				if j < ny-1 {
					add(id(i, j+1, k), -1)
				}
				if k < nz-1 {
					add(id(i, j, k+1), -1)
				}
			}
		}
	}
	return FromCOO(n, n, ri, ci, v)
}
