package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random sparse matrix with about density*rows*cols
// entries, deterministic per seed.
func randomCSR(rows, cols int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var ri, ci []int
	var v []float64
	n := int(density * float64(rows) * float64(cols))
	for k := 0; k < n; k++ {
		ri = append(ri, rng.Intn(rows))
		ci = append(ci, rng.Intn(cols))
		v = append(v, rng.NormFloat64())
	}
	return FromCOO(rows, cols, ri, ci, v)
}

func TestFromCOOSumsDuplicates(t *testing.T) {
	a := FromCOO(2, 2, []int{0, 0, 1}, []int{1, 1, 0}, []float64{2, 3, 4})
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", a.NNZ())
	}
	if a.At(0, 1) != 5 || a.At(1, 0) != 4 || a.At(0, 0) != 0 {
		t.Errorf("values wrong: %v", a.Dense())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCOORejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range COO entry accepted")
		}
	}()
	FromCOO(2, 2, []int{5}, []int{0}, []float64{1})
}

func TestValidateCatchesUnsortedColumns(t *testing.T) {
	a := &CSR{Rows: 1, Cols: 3, RowPtr: []int{0, 2}, ColIdx: []int{2, 0}, Val: []float64{1, 2}}
	if err := a.Validate(); err == nil {
		t.Fatal("unsorted columns not caught")
	}
}

func TestEye(t *testing.T) {
	i3 := Eye(3)
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	i3.MulVec(x, y)
	for k := range x {
		if y[k] != x[k] {
			t.Fatalf("identity MulVec got %v", y)
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	// [[1 2][0 3]] * [4 5] = [14, 15]
	a := FromCOO(2, 2, []int{0, 0, 1}, []int{0, 1, 1}, []float64{1, 2, 3})
	y := make([]float64, 2)
	a.MulVec([]float64{4, 5}, y)
	if y[0] != 14 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [14 15]", y)
	}
	a.MulVecAdd([]float64{4, 5}, y)
	if y[0] != 28 || y[1] != 30 {
		t.Errorf("MulVecAdd = %v, want [28 30]", y)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	Eye(2).MulVec(make([]float64, 3), make([]float64, 2))
}

func TestTransposeInvolution(t *testing.T) {
	a := randomCSR(15, 9, 0.2, 7)
	att := a.Transpose().Transpose()
	if !a.EqualWithin(att, 0) {
		t.Error("transpose twice != original")
	}
	at := a.Transpose()
	if at.Rows != a.Cols || at.Cols != a.Rows {
		t.Errorf("transpose dims %dx%d", at.Rows, at.Cols)
	}
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	// (A^T)[j,i] == A[i,j] on a sample.
	if at.At(3, 7) != a.At(7, 3) {
		t.Error("transpose entry mismatch")
	}
}

func TestDiag(t *testing.T) {
	a := Poisson1D(4)
	d := a.Diag()
	for i, v := range d {
		if v != 2 {
			t.Fatalf("diag[%d] = %v, want 2", i, v)
		}
	}
}

func TestAdd(t *testing.T) {
	a := randomCSR(8, 8, 0.3, 1)
	b := randomCSR(8, 8, 0.3, 2)
	c := Add(a, b, 2, -1)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 2*a.At(i, j) - b.At(i, j)
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("Add wrong at (%d,%d): %v want %v", i, j, c.At(i, j), want)
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleClone(t *testing.T) {
	a := Poisson1D(5)
	b := a.Clone().Scale(3)
	if a.At(0, 0) != 2 {
		t.Error("Scale mutated the original through Clone")
	}
	if b.At(0, 0) != 6 {
		t.Errorf("Scale(3) diag = %v", b.At(0, 0))
	}
}

func TestEqualWithin(t *testing.T) {
	a := Poisson2D(3, 3)
	b := a.Clone()
	if !a.EqualWithin(b, 0) {
		t.Error("clone not equal")
	}
	b.Val[0] += 1e-3
	if a.EqualWithin(b, 1e-6) {
		t.Error("perturbation not detected")
	}
	if !a.EqualWithin(b, 1e-2) {
		t.Error("tolerance not honoured")
	}
	// Structurally different but numerically equal-within-tol.
	c := FromCOO(2, 2, []int{0}, []int{0}, []float64{1e-9})
	d := FromCOO(2, 2, []int{1}, []int{1}, []float64{1e-9})
	if !c.EqualWithin(d, 1e-6) {
		t.Error("tiny structural differences should pass within tol")
	}
}

func TestPoissonProperties(t *testing.T) {
	// Row sums: interior rows sum to zero, boundary rows positive.
	for _, a := range []*CSR{Poisson1D(10), Poisson2D(4, 5), Poisson3D(3, 3, 3)} {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.Rows; i++ {
			sum := 0.0
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				sum += a.Val[k]
			}
			if sum < -1e-12 {
				t.Fatalf("row %d sum %v negative", i, sum)
			}
		}
		// Symmetry.
		if !a.EqualWithin(a.Transpose(), 1e-14) {
			t.Fatal("Poisson operator not symmetric")
		}
	}
}

func TestPoisson3DStencilCount(t *testing.T) {
	a := Poisson3D(3, 3, 3)
	center := 13 // (1,1,1)
	if got := a.RowPtr[center+1] - a.RowPtr[center]; got != 7 {
		t.Errorf("interior row has %d entries, want 7", got)
	}
}

func TestMulVecWorkPositive(t *testing.T) {
	f, b := Poisson2D(5, 5).MulVecWork()
	if f <= 0 || b <= 0 {
		t.Errorf("work = %v flops %v bytes", f, b)
	}
}

// Property: (A+A)x == 2*Ax for random matrices.
func TestAddLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomCSR(10, 10, 0.3, seed)
		two := Add(a, a, 1, 1)
		x := make([]float64, 10)
		rng := rand.New(rand.NewSource(seed + 1))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, 10)
		y2 := make([]float64, 10)
		two.MulVec(x, y1)
		a.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-2*y2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: transpose preserves Frobenius norm.
func TestTransposeNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomCSR(12, 7, 0.25, seed)
		frob := func(m *CSR) float64 {
			s := 0.0
			for _, v := range m.Val {
				s += v * v
			}
			return s
		}
		return math.Abs(frob(a)-frob(a.Transpose())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
