package sparse

import (
	"fmt"
	"math"
	"sort"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

// Dist is a distributed sparse matrix in row-block form: rank r owns the
// contiguous global rows [RowLo, RowHi). Off-block column references are
// satisfied by a halo exchange whose send/recv lists are computed once at
// construction, the communication pattern at the heart of distributed
// SpMV and the AMG solve phases the paper profiles.
type Dist struct {
	Comm         *mpi.Comm
	N            int // global dimension (square matrices)
	RowLo, RowHi int

	// Local holds the owned rows with renumbered columns: owned columns
	// come first as [0, RowHi-RowLo), halo columns follow in the order of
	// haloGlobals.
	Local       *CSR
	haloGlobals []int

	// Halo exchange pattern.
	nbrs     []int   // peer ranks, sorted
	sendIdx  [][]int // local x indices to pack per peer
	recvOffs [][]int // halo slot per incoming value per peer

	// WorkScale multiplies the virtual compute charged per kernel so a
	// scaled-down working set can stand in for the true problem size.
	WorkScale float64
	// Tag is the base mpi tag used by this matrix's exchanges.
	Tag int
}

// OwnedRows returns the number of rows this rank owns.
func (d *Dist) OwnedRows() int { return d.RowHi - d.RowLo }

// HaloSize returns the number of ghost values received per exchange.
func (d *Dist) HaloSize() int { return len(d.haloGlobals) }

// Neighbours returns the peer ranks of the halo exchange.
func (d *Dist) Neighbours() []int { return d.nbrs }

// rowRange gives the even row split used by NewDistFromGlobal.
func rowRange(n, p, r int) (lo, hi int) { return r * n / p, (r + 1) * n / p }

// ownerOf returns the rank owning global row g under the even split.
func ownerOf(n, p, g int) int {
	// Invert g = r*n/p approximately, then fix up.
	r := g * p / n
	for lo, _ := rowRange(n, p, r); lo > g; lo, _ = rowRange(n, p, r) {
		r--
	}
	for _, hi := rowRange(n, p, r); hi <= g; _, hi = rowRange(n, p, r) {
		r++
	}
	return r
}

// NewDistFromGlobal builds the distributed form of a square global matrix.
// Every rank passes the same global matrix (convenient for tests and for
// mini-app setup where the global operator is generated analytically);
// only the owned rows are retained. Collective over c.
func NewDistFromGlobal(c *mpi.Comm, global *CSR, tag int) *Dist {
	if global.Rows != global.Cols {
		panic("sparse: NewDistFromGlobal requires a square matrix")
	}
	n, p, r := global.Rows, c.Size(), c.Rank()
	lo, hi := rowRange(n, p, r)
	d := &Dist{Comm: c, N: n, RowLo: lo, RowHi: hi, WorkScale: 1, Tag: tag}

	// Collect the halo: off-block global columns referenced by owned rows.
	need := map[int]bool{}
	for i := lo; i < hi; i++ {
		for k := global.RowPtr[i]; k < global.RowPtr[i+1]; k++ {
			cIdx := global.ColIdx[k]
			if cIdx < lo || cIdx >= hi {
				need[cIdx] = true
			}
		}
	}
	d.haloGlobals = make([]int, 0, len(need))
	for g := range need {
		d.haloGlobals = append(d.haloGlobals, g)
	}
	sort.Ints(d.haloGlobals)
	haloLocal := make(map[int]int, len(d.haloGlobals))
	for i, g := range d.haloGlobals {
		haloLocal[g] = (hi - lo) + i
	}

	// Localise the owned rows.
	own := hi - lo
	rowPtr := make([]int, own+1)
	var colIdx []int
	var val []float64
	for i := lo; i < hi; i++ {
		for k := global.RowPtr[i]; k < global.RowPtr[i+1]; k++ {
			g := global.ColIdx[k]
			if g >= lo && g < hi {
				colIdx = append(colIdx, g-lo)
			} else {
				colIdx = append(colIdx, haloLocal[g])
			}
			val = append(val, global.Val[k])
		}
		rowPtr[i-lo+1] = len(colIdx)
	}
	d.Local = &CSR{Rows: own, Cols: own + len(d.haloGlobals), RowPtr: rowPtr, ColIdx: colIdx, Val: val}

	// Build the exchange pattern: tell each owner which of its rows we
	// need, and learn which of our rows others need.
	requests := make([][]int, p)
	recvSlots := make([][]int, p) // halo slot per requested global, per peer
	for slot, g := range d.haloGlobals {
		owner := ownerOf(n, p, g)
		requests[owner] = append(requests[owner], g)
		recvSlots[owner] = append(recvSlots[owner], own+slot)
	}
	granted := c.AlltoallvInts(requests)
	for peer := 0; peer < p; peer++ {
		wantsFromUs := granted[peer]
		if len(wantsFromUs) == 0 && len(requests[peer]) == 0 {
			continue
		}
		d.nbrs = append(d.nbrs, peer)
		idxs := make([]int, len(wantsFromUs))
		for i, g := range wantsFromUs {
			if g < lo || g >= hi {
				panic(fmt.Sprintf("sparse: rank %d asked rank %d for row %d it does not own", peer, r, g))
			}
			idxs[i] = g - lo
		}
		d.sendIdx = append(d.sendIdx, idxs)
		d.recvOffs = append(d.recvOffs, recvSlots[peer])
	}
	return d
}

// Exchange fills ext's halo region from neighbouring ranks. ext must have
// length OwnedRows()+HaloSize() with the owned values already in place.
func (d *Dist) Exchange(ext []float64) {
	if len(ext) != d.Local.Cols {
		panic(fmt.Sprintf("sparse: Exchange buffer length %d, want %d", len(ext), d.Local.Cols))
	}
	sendBufs := make([][]float64, len(d.nbrs))
	for i, idxs := range d.sendIdx {
		buf := make([]float64, len(idxs))
		for k, idx := range idxs {
			buf[k] = ext[idx]
		}
		sendBufs[i] = buf
	}
	recvd := d.Comm.HaloExchange(d.Tag, d.nbrs, sendBufs)
	for i, offs := range d.recvOffs {
		for k, off := range offs {
			ext[off] = recvd[i][k]
		}
	}
}

// extBuffer returns a Cols-length buffer with x in the owned prefix.
func (d *Dist) extBuffer(x []float64) []float64 {
	ext := make([]float64, d.Local.Cols)
	copy(ext, x)
	return ext
}

// MulVec computes y = A x where x and y are the rank's owned slices.
// Performs the halo exchange and charges the virtual compute cost.
func (d *Dist) MulVec(x, y []float64) {
	ext := d.extBuffer(x)
	d.Exchange(ext)
	d.Local.MulVec(ext, y)
	f, b := d.Local.MulVecWork()
	d.Comm.Compute(cluster.Work{Flops: f * d.WorkScale, Bytes: b * d.WorkScale})
}

// Dot returns the global dot product of owned slices a and b.
func (d *Dist) Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	d.Comm.Compute(cluster.Work{Flops: 2 * float64(len(a)) * d.WorkScale, Bytes: 16 * float64(len(a)) * d.WorkScale})
	return d.Comm.AllreduceScalar(s, mpi.Sum)
}

// Norm2 returns the global 2-norm of the owned slice.
func (d *Dist) Norm2(a []float64) float64 {
	return math.Sqrt(d.Dot(a, a))
}
