package sparse

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

func distCfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 30 * time.Second}
}

func TestOwnerOfConsistent(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {100, 7}, {5, 5}, {64, 8}} {
		for g := 0; g < tc.n; g++ {
			r := ownerOf(tc.n, tc.p, g)
			lo, hi := rowRange(tc.n, tc.p, r)
			if g < lo || g >= hi {
				t.Fatalf("ownerOf(%d,%d,%d) = %d but range [%d,%d)", tc.n, tc.p, g, r, lo, hi)
			}
		}
	}
}

func TestDistMulVecMatchesSerial(t *testing.T) {
	global := Poisson2D(8, 8)
	n := global.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	global.MulVec(x, want)

	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := mpi.Run(p, distCfg(), func(c *mpi.Comm) error {
			d := NewDistFromGlobal(c, global, 100)
			lo, hi := d.RowLo, d.RowHi
			y := make([]float64, hi-lo)
			d.MulVec(x[lo:hi], y)
			for i := range y {
				if math.Abs(y[i]-want[lo+i]) > 1e-12 {
					return fmt.Errorf("p=%d rank %d: y[%d]=%v, want %v", p, c.Rank(), i, y[i], want[lo+i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistRepeatedMulVec(t *testing.T) {
	// Two consecutive products (power iteration step) must stay exact:
	// exchange lists must be reusable.
	global := Poisson1D(20)
	x := make([]float64, 20)
	for i := range x {
		x[i] = float64(i%3) + 1
	}
	y1 := make([]float64, 20)
	y2 := make([]float64, 20)
	global.MulVec(x, y1)
	global.MulVec(y1, y2)

	_, err := mpi.Run(4, distCfg(), func(c *mpi.Comm) error {
		d := NewDistFromGlobal(c, global, 7)
		lo, hi := d.RowLo, d.RowHi
		a := make([]float64, hi-lo)
		b := make([]float64, hi-lo)
		d.MulVec(x[lo:hi], a)
		d.MulVec(a, b)
		for i := range b {
			if math.Abs(b[i]-y2[lo+i]) > 1e-12 {
				return fmt.Errorf("second product wrong at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistDotAndNorm(t *testing.T) {
	global := Poisson1D(12)
	x := make([]float64, 12)
	wantDot := 0.0
	for i := range x {
		x[i] = float64(i)
		wantDot += x[i] * x[i]
	}
	_, err := mpi.Run(3, distCfg(), func(c *mpi.Comm) error {
		d := NewDistFromGlobal(c, global, 5)
		mine := x[d.RowLo:d.RowHi]
		if got := d.Dot(mine, mine); math.Abs(got-wantDot) > 1e-12 {
			return fmt.Errorf("dot = %v, want %v", got, wantDot)
		}
		if got := d.Norm2(mine); math.Abs(got-math.Sqrt(wantDot)) > 1e-12 {
			return fmt.Errorf("norm = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistHaloStructure(t *testing.T) {
	// 1-D Poisson split over 4 ranks: interior ranks have halo 2 and two
	// neighbours; end ranks one of each.
	global := Poisson1D(16)
	_, err := mpi.Run(4, distCfg(), func(c *mpi.Comm) error {
		d := NewDistFromGlobal(c, global, 9)
		wantHalo, wantNbrs := 2, 2
		if c.Rank() == 0 || c.Rank() == 3 {
			wantHalo, wantNbrs = 1, 1
		}
		if d.HaloSize() != wantHalo {
			return fmt.Errorf("rank %d halo %d, want %d", c.Rank(), d.HaloSize(), wantHalo)
		}
		if len(d.Neighbours()) != wantNbrs {
			return fmt.Errorf("rank %d nbrs %v", c.Rank(), d.Neighbours())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistWorkScaleChargesMoreTime(t *testing.T) {
	global := Poisson2D(10, 10)
	x := make([]float64, 100)
	elapsed := func(scale float64) float64 {
		st, err := mpi.Run(2, distCfg(), func(c *mpi.Comm) error {
			d := NewDistFromGlobal(c, global, 3)
			d.WorkScale = scale
			y := make([]float64, d.OwnedRows())
			d.MulVec(x[d.RowLo:d.RowHi], y)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.AvgCompute()
	}
	if !(elapsed(100) > elapsed(1)) {
		t.Error("WorkScale did not increase charged compute time")
	}
}

func TestDistRequiresSquare(t *testing.T) {
	_, err := mpi.Run(1, distCfg(), func(c *mpi.Comm) error {
		defer func() { recover() }()
		NewDistFromGlobal(c, randomCSR(3, 4, 0.5, 1), 0)
		return fmt.Errorf("non-square accepted")
	})
	if err != nil {
		t.Fatal(err)
	}
}
