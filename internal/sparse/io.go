package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteMatrixMarket serialises the matrix in MatrixMarket coordinate
// format (the lingua franca for sparse-solver test matrices), so
// operators built here can be exchanged with external AMG/solver tools
// and vice versa.
func (a *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			// MatrixMarket is 1-indexed.
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate-format matrix.
// Supports the "general" and "symmetric" qualifiers (symmetric entries
// are mirrored); pattern and complex fields are rejected.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" || fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", strings.TrimSpace(header))
	}
	if fields[3] != "real" && fields[3] != "integer" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field type %q", fields[3])
	}
	symmetric := false
	if len(fields) >= 5 {
		switch fields[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", fields[4])
		}
	}
	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("sparse: reading MatrixMarket size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket dimensions %dx%d/%d", rows, cols, nnz)
	}
	ri := make([]int, 0, nnz)
	ci := make([]int, 0, nnz)
	v := make([]float64, 0, nnz)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("sparse: reading MatrixMarket entries: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			var i, j int
			var x float64
			if _, serr := fmt.Sscanf(trimmed, "%d %d %g", &i, &j, &x); serr != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q: %w", trimmed, serr)
			}
			if i < 1 || i > rows || j < 1 || j > cols {
				return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) out of %dx%d", i, j, rows, cols)
			}
			ri = append(ri, i-1)
			ci = append(ci, j-1)
			v = append(v, x)
			if symmetric && i != j {
				ri = append(ri, j-1)
				ci = append(ci, i-1)
				v = append(v, x)
			}
			read++
		}
		if err == io.EOF {
			break
		}
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket file truncated: %d of %d entries", read, nnz)
	}
	return FromCOO(rows, cols, ri, ci, v), nil
}
