package sparse

import (
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := Poisson2D(6, 5)
	var buf strings.Builder
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualWithin(back, 0) {
		t.Error("round trip changed the matrix")
	}
}

func TestMatrixMarketRandomRoundTrip(t *testing.T) {
	a := randomCSR(17, 11, 0.25, 21)
	var buf strings.Builder
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualWithin(back, 1e-15) {
		t.Error("random matrix round trip lost precision")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	mm := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle of a 3x3 SPD matrix
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
`
	a, err := ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Error("symmetric entry not mirrored")
	}
	if a.At(0, 0) != 2 || a.NNZ() != 5 {
		t.Errorf("parsed matrix wrong: nnz=%d", a.NNZ())
	}
}

func TestMatrixMarketComments(t *testing.T) {
	mm := "%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n% another\n1 2 3.5\n"
	a, err := ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 3.5 {
		t.Errorf("entry = %v", a.At(0, 1))
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a matrix\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n", // truncated
	}
	for i, mm := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(mm)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
