package sparse

import (
	"sort"
	"sync"
)

// ---- Column renumbering (Section IV-B, bullet 4) --------------------------
//
// In distributed AMG, matrix rows are spread across ranks; after a halo
// exchange a rank's column index set contains new global indices that must
// be renumbered into a compact local range. The baseline sorts the whole
// index stream; the optimised variant builds per-worker hash maps, merges
// them with a parallel merge sort, and scatters local ids back through a
// reverse mapping [48]. Both produce the identical mapping: the k distinct
// global columns sorted ascending become locals 0..k-1.

// RenumberSort is the baseline renumbering: sort the full column stream,
// unique it, then binary-search each index. Returns the local index per
// input position and the sorted distinct globals (globalOf[local] = global).
func RenumberSort(globalCols []int) (locals []int, globalOf []int) {
	sorted := make([]int, len(globalCols))
	copy(sorted, globalCols)
	sort.Ints(sorted)
	globalOf = sorted[:0]
	prev := -1
	first := true
	for _, g := range sorted {
		if first || g != prev {
			globalOf = append(globalOf, g)
			prev = g
			first = false
		}
	}
	locals = make([]int, len(globalCols))
	for i, g := range globalCols {
		locals[i] = sort.SearchInts(globalOf, g)
	}
	return locals, globalOf
}

// RenumberHashMerge is the optimised renumbering: each worker hashes its
// shard of the column stream into a private set, the per-worker key sets
// are merged with a k-way merge of sorted runs, and local ids are
// scattered back through a reverse map. workers <= 0 picks 4.
func RenumberHashMerge(globalCols []int, workers int) (locals []int, globalOf []int) {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(globalCols) {
		workers = len(globalCols)
	}
	if workers < 1 {
		workers = 1
	}
	// Phase 1: private hash sets per worker.
	sets := make([]map[int]struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(globalCols) / workers
		hi := (w + 1) * len(globalCols) / workers
		sets[w] = make(map[int]struct{})
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, g := range globalCols[lo:hi] {
				sets[w][g] = struct{}{}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Phase 2: sort each worker's keys, then k-way merge the runs.
	runs := make([][]int, workers)
	for w := 0; w < workers; w++ {
		run := make([]int, 0, len(sets[w]))
		for g := range sets[w] {
			run = append(run, g)
		}
		sort.Ints(run)
		runs[w] = run
	}
	globalOf = mergeRuns(runs)
	// Phase 3: reverse map global -> local, scatter back in parallel.
	rev := make(map[int]int, len(globalOf))
	for l, g := range globalOf {
		rev[g] = l
	}
	locals = make([]int, len(globalCols))
	for w := 0; w < workers; w++ {
		lo := w * len(globalCols) / workers
		hi := (w + 1) * len(globalCols) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				locals[i] = rev[globalCols[i]]
			}
		}(lo, hi)
	}
	wg.Wait()
	return locals, globalOf
}

// mergeRuns merges sorted runs into one sorted slice without duplicates.
func mergeRuns(runs [][]int) []int {
	for len(runs) > 1 {
		var next [][]int
		for i := 0; i+1 < len(runs); i += 2 {
			next = append(next, merge2(runs[i], runs[i+1]))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	if len(runs) == 0 {
		return []int{}
	}
	return runs[0]
}

func merge2(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ---- Identity-block interpolation reordering (Section IV-B, bullet 3) ----
//
// During AMG interpolation and restriction, coarse points map directly to
// themselves: their rows of P are a single 1.0. Splitting those rows out
// turns that part of the SpMV into a plain copy, saving flops and memory
// bandwidth [48].

// IdentitySplit is an interpolation operator with its identity rows
// factored out.
type IdentitySplit struct {
	Rows, Cols int
	IdRows     []int32 // rows that are exactly [1.0] at IdCols
	IdCols     []int32
	Rest       *CSR // remaining rows (identity rows left empty)
}

// AnalyzeIdentity splits P into identity rows and the rest.
func AnalyzeIdentity(p *CSR) *IdentitySplit {
	s := &IdentitySplit{Rows: p.Rows, Cols: p.Cols}
	restPtr := make([]int, p.Rows+1)
	var restCols []int
	var restVals []float64
	for i := 0; i < p.Rows; i++ {
		lo, hi := p.RowPtr[i], p.RowPtr[i+1]
		if hi-lo == 1 && p.Val[lo] == 1.0 {
			s.IdRows = append(s.IdRows, int32(i))
			s.IdCols = append(s.IdCols, int32(p.ColIdx[lo]))
		} else {
			restCols = append(restCols, p.ColIdx[lo:hi]...)
			restVals = append(restVals, p.Val[lo:hi]...)
		}
		restPtr[i+1] = len(restCols)
	}
	s.Rest = &CSR{Rows: p.Rows, Cols: p.Cols, RowPtr: restPtr, ColIdx: restCols, Val: restVals}
	return s
}

// MulVec computes y = P x using the split form: direct copies for the
// identity block, a standard SpMV for the rest.
func (s *IdentitySplit) MulVec(x, y []float64) {
	s.Rest.MulVec(x, y)
	for k, r := range s.IdRows {
		y[r] = x[s.IdCols[k]]
	}
}

// Work returns the roofline cost of the split SpMV: the identity block
// moves 16 bytes per row with no flops, the rest is a normal SpMV.
func (s *IdentitySplit) Work() (flops, bytes float64) {
	f, b := s.Rest.MulVecWork()
	return f, b + 16*float64(len(s.IdRows))
}
