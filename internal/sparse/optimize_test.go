package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRenumberSortBasic(t *testing.T) {
	locals, globals := RenumberSort([]int{50, 10, 50, 30, 10})
	wantGlobals := []int{10, 30, 50}
	for i, g := range wantGlobals {
		if globals[i] != g {
			t.Fatalf("globals = %v, want %v", globals, wantGlobals)
		}
	}
	wantLocals := []int{2, 0, 2, 1, 0}
	for i, l := range wantLocals {
		if locals[i] != l {
			t.Fatalf("locals = %v, want %v", locals, wantLocals)
		}
	}
}

func TestRenumberEmpty(t *testing.T) {
	l1, g1 := RenumberSort(nil)
	l2, g2 := RenumberHashMerge(nil, 4)
	if len(l1) != 0 || len(g1) != 0 || len(l2) != 0 || len(g2) != 0 {
		t.Error("empty input should give empty outputs")
	}
}

func TestRenumberVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cols := make([]int, 5000)
	for i := range cols {
		cols[i] = rng.Intn(800)
	}
	l1, g1 := RenumberSort(cols)
	for _, workers := range []int{1, 2, 7, 16} {
		l2, g2 := RenumberHashMerge(cols, workers)
		if len(g1) != len(g2) {
			t.Fatalf("workers=%d: distinct counts differ: %d vs %d", workers, len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("workers=%d: globals differ at %d", workers, i)
			}
		}
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("workers=%d: locals differ at %d", workers, i)
			}
		}
	}
}

func TestRenumberRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := make([]int, int(n)+1)
		for i := range cols {
			cols[i] = rng.Intn(64)
		}
		locals, globals := RenumberHashMerge(cols, 3)
		// Round trip: globalOf[local[i]] == cols[i].
		for i := range cols {
			if globals[locals[i]] != cols[i] {
				return false
			}
		}
		// globals sorted strictly ascending.
		for i := 1; i < len(globals); i++ {
			if globals[i] <= globals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeRuns(t *testing.T) {
	got := mergeRuns([][]int{{1, 4, 9}, {2, 4}, {0, 9, 10}})
	want := []int{0, 1, 2, 4, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("mergeRuns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeRuns = %v, want %v", got, want)
		}
	}
	if out := mergeRuns(nil); len(out) != 0 {
		t.Error("mergeRuns(nil) not empty")
	}
}

// interpolationMatrix builds a typical AMG P: coarse points are identity
// rows, fine points interpolate from two coarse neighbours.
func interpolationMatrix(fine int) *CSR {
	var ri, ci []int
	var v []float64
	coarse := (fine + 1) / 2
	for i := 0; i < fine; i++ {
		if i%2 == 0 {
			ri = append(ri, i)
			ci = append(ci, i/2)
			v = append(v, 1)
		} else {
			ri = append(ri, i)
			ci = append(ci, i/2)
			v = append(v, 0.5)
			if i/2+1 < coarse {
				ri = append(ri, i)
				ci = append(ci, i/2+1)
				v = append(v, 0.5)
			}
		}
	}
	return FromCOO(fine, coarse, ri, ci, v)
}

func TestIdentitySplitMatchesFullSpMV(t *testing.T) {
	p := interpolationMatrix(11)
	s := AnalyzeIdentity(p)
	if len(s.IdRows) != 6 {
		t.Errorf("identity rows = %d, want 6", len(s.IdRows))
	}
	x := make([]float64, p.Cols)
	for i := range x {
		x[i] = float64(i + 1)
	}
	y1 := make([]float64, p.Rows)
	y2 := make([]float64, p.Rows)
	p.MulVec(x, y1)
	s.MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("split SpMV differs at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestIdentitySplitSavesWork(t *testing.T) {
	p := interpolationMatrix(101)
	s := AnalyzeIdentity(p)
	fFull, bFull := p.MulVecWork()
	fSplit, bSplit := s.Work()
	if !(fSplit < fFull) {
		t.Errorf("split flops %v not below full %v", fSplit, fFull)
	}
	if !(bSplit < bFull) {
		t.Errorf("split bytes %v not below full %v", bSplit, bFull)
	}
}

func TestIdentitySplitNoIdentityRows(t *testing.T) {
	a := randomCSR(6, 6, 0.5, 11)
	for k := range a.Val {
		a.Val[k] = 2.5 // no 1.0 single-entry rows
	}
	s := AnalyzeIdentity(a)
	x := make([]float64, 6)
	for i := range x {
		x[i] = float64(i)
	}
	y1 := make([]float64, 6)
	y2 := make([]float64, 6)
	a.MulVec(x, y1)
	s.MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("split without identity rows wrong")
		}
	}
}

func TestIdentitySplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		size := int(seed % 40)
		if size < 0 {
			size = -size
		}
		p := interpolationMatrix(size + 2)
		s := AnalyzeIdentity(p)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, p.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, p.Rows)
		y2 := make([]float64, p.Rows)
		p.MulVec(x, y1)
		s.MulVec(x, y2)
		for i := range y1 {
			if y1[i] != y2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
