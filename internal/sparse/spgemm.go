package sparse

import (
	"runtime"
	"sort"
	"sync"
)

// MulTwoPass multiplies C = A*B with the traditional two-pass SpGEMM the
// paper identifies as the baseline: the inputs are read twice, first
// symbolically to size the output exactly, then numerically to fill it
// (Section IV-B, [54]). Single-threaded by construction.
func MulTwoPass(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic("sparse: SpGEMM dimension mismatch")
	}
	// Pass 1: symbolic. Count distinct columns per output row.
	rowPtr := make([]int, a.Rows+1)
	marker := make([]int, b.Cols)
	for i := range marker {
		marker[i] = -1
	}
	for i := 0; i < a.Rows; i++ {
		count := 0
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				c := b.ColIdx[kb]
				if marker[c] != i {
					marker[c] = i
					count++
				}
			}
		}
		rowPtr[i+1] = rowPtr[i] + count
	}
	// Pass 2: numeric, re-reading both inputs.
	colIdx := make([]int, rowPtr[a.Rows])
	val := make([]float64, rowPtr[a.Rows])
	acc := make([]float64, b.Cols)
	for i := range marker {
		marker[i] = -1
	}
	for i := 0; i < a.Rows; i++ {
		start := rowPtr[i]
		n := start
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				c := b.ColIdx[kb]
				if marker[c] != i {
					marker[c] = i
					colIdx[n] = c
					acc[c] = av * b.Val[kb]
					n++
				} else {
					acc[c] += av * b.Val[kb]
				}
			}
		}
		// Sort the row's columns and place values.
		cols := colIdx[start:n]
		sort.Ints(cols)
		for k, c := range cols {
			val[start+k] = acc[c]
		}
	}
	return &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// MulSPA multiplies C = A*B with the optimised single-pass SpGEMM of
// Section IV-B: each worker owns a sparse accumulator (SPA) giving
// constant-time access to any output entry [55], writes disjoint results
// into a private chunk, and the chunks are stitched into contiguous CSR
// storage at the end, avoiding the second read of the inputs [48].
// workers <= 0 uses GOMAXPROCS. Output is identical to MulTwoPass.
func MulSPA(a, b *CSR, workers int) *CSR {
	if a.Cols != b.Rows {
		panic("sparse: SpGEMM dimension mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	type chunk struct {
		rowLens []int
		colIdx  []int
		val     []float64
	}
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.Rows / workers
		hi := (w + 1) * a.Rows / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// The SPA: dense accumulator + occupancy markers + touched list.
			acc := make([]float64, b.Cols)
			marker := make([]int, b.Cols)
			for i := range marker {
				marker[i] = -1
			}
			touched := make([]int, 0, 64)
			ch := &chunks[w]
			ch.rowLens = make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				touched = touched[:0]
				for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
					j := a.ColIdx[ka]
					av := a.Val[ka]
					for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
						c := b.ColIdx[kb]
						if marker[c] != i {
							marker[c] = i
							acc[c] = av * b.Val[kb]
							touched = append(touched, c)
						} else {
							acc[c] += av * b.Val[kb]
						}
					}
				}
				sort.Ints(touched)
				ch.rowLens[i-lo] = len(touched)
				for _, c := range touched {
					ch.colIdx = append(ch.colIdx, c)
					ch.val = append(ch.val, acc[c])
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Stitch: copy disjoint per-worker chunks into contiguous storage.
	rowPtr := make([]int, a.Rows+1)
	total := 0
	for w := 0; w < workers; w++ {
		lo := w * a.Rows / workers
		for r, l := range chunks[w].rowLens {
			rowPtr[lo+r+1] = l
		}
		total += len(chunks[w].val)
	}
	for i := 0; i < a.Rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, total)
	val := make([]float64, total)
	off := 0
	for w := 0; w < workers; w++ {
		copy(colIdx[off:], chunks[w].colIdx)
		copy(val[off:], chunks[w].val)
		off += len(chunks[w].val)
	}
	return &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Mul is the package default SpGEMM (the optimised SPA kernel).
func Mul(a, b *CSR) *CSR { return MulSPA(a, b, 0) }

// SpGEMMWork estimates the roofline work of C=A*B: 2 flops per partial
// product, with bytes for streaming A and gathering B rows. passes is 2
// for the baseline (inputs read twice) and 1 for the SPA kernel.
func SpGEMMWork(a, b *CSR, passes int) (flops, bytes float64) {
	products := 0.0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			products += float64(b.RowPtr[j+1] - b.RowPtr[j])
		}
	}
	flops = 2 * products
	bytes = float64(passes) * (16*float64(a.NNZ()) + 16*products)
	return
}
