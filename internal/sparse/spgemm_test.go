package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func denseMul(a, b *CSR) [][]float64 {
	da, db := a.Dense(), b.Dense()
	out := make([][]float64, a.Rows)
	for i := range out {
		out[i] = make([]float64, b.Cols)
		for k := 0; k < a.Cols; k++ {
			if da[i][k] == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out[i][j] += da[i][k] * db[k][j]
			}
		}
	}
	return out
}

func checkAgainstDense(t *testing.T, c *CSR, want [][]float64, label string) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: invalid output: %v", label, err)
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(c.At(i, j)-want[i][j]) > 1e-10 {
				t.Fatalf("%s: C[%d,%d] = %v, want %v", label, i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestSpGEMMAgainstDense(t *testing.T) {
	a := randomCSR(13, 9, 0.3, 3)
	b := randomCSR(9, 11, 0.3, 4)
	want := denseMul(a, b)
	checkAgainstDense(t, MulTwoPass(a, b), want, "two-pass")
	checkAgainstDense(t, MulSPA(a, b, 1), want, "spa-1")
	checkAgainstDense(t, MulSPA(a, b, 4), want, "spa-4")
	checkAgainstDense(t, Mul(a, b), want, "default")
}

func TestSpGEMMIdentity(t *testing.T) {
	a := randomCSR(10, 10, 0.3, 5)
	if !MulTwoPass(a, Eye(10)).EqualWithin(a, 1e-14) {
		t.Error("A*I != A (two-pass)")
	}
	if !MulSPA(Eye(10), a, 3).EqualWithin(a, 1e-14) {
		t.Error("I*A != A (SPA)")
	}
}

func TestSpGEMMDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	MulTwoPass(Eye(3), Eye(4))
}

func TestSpGEMMEmptyRows(t *testing.T) {
	// Matrix with entirely empty rows must survive both kernels.
	a := FromCOO(4, 4, []int{0, 3}, []int{1, 2}, []float64{5, 7})
	b := FromCOO(4, 4, []int{1, 2}, []int{0, 3}, []float64{2, 3})
	want := denseMul(a, b)
	checkAgainstDense(t, MulTwoPass(a, b), want, "two-pass empty")
	checkAgainstDense(t, MulSPA(a, b, 8), want, "spa empty")
}

func TestSpGEMMVariantsAgreeProperty(t *testing.T) {
	f := func(seed int64, wk uint8) bool {
		workers := int(wk)%7 + 1
		a := randomCSR(17, 12, 0.2, seed)
		b := randomCSR(12, 15, 0.2, seed+100)
		return MulTwoPass(a, b).EqualWithin(MulSPA(a, b, workers), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGalerkinTripleProduct(t *testing.T) {
	// RAP with P = piecewise-constant aggregation of a 1-D Poisson matrix
	// must stay symmetric positive and have the aggregated size.
	a := Poisson1D(8)
	// P: 8x4, two fine points per coarse point.
	var ri, ci []int
	var v []float64
	for i := 0; i < 8; i++ {
		ri = append(ri, i)
		ci = append(ci, i/2)
		v = append(v, 1)
	}
	p := FromCOO(8, 4, ri, ci, v)
	rap := Mul(p.Transpose(), Mul(a, p))
	if rap.Rows != 4 || rap.Cols != 4 {
		t.Fatalf("RAP dims %dx%d", rap.Rows, rap.Cols)
	}
	if !rap.EqualWithin(rap.Transpose(), 1e-12) {
		t.Error("RAP lost symmetry")
	}
	// Aggregated tridiagonal: diag 2, off-diag -1 (rows 2..n-2).
	if rap.At(1, 1) != 2 || rap.At(1, 2) != -1 {
		t.Errorf("RAP row 1 = %v %v, want 2 -1", rap.At(1, 1), rap.At(1, 2))
	}
}

func TestSpGEMMWorkAccounting(t *testing.T) {
	a := Poisson2D(6, 6)
	f1, b1 := SpGEMMWork(a, a, 1)
	f2, b2 := SpGEMMWork(a, a, 2)
	if f1 != f2 {
		t.Error("flops should not depend on pass count")
	}
	if !(b2 > b1) {
		t.Error("two passes must stream more bytes than one")
	}
	if f1 <= 0 {
		t.Error("no flops counted")
	}
}
