// Package spray implements the Lagrangian fuel-spray module of the
// pressure-solver proxy: droplet injection from a nozzle cone, drag and
// evaporation updates, spatial-partitioning ownership over the flow
// decomposition, and the per-step redistribution whose collective
// communication the paper identifies as the solver's worst bottleneck
// (96% of the spray routine's run-time is MPI at 2,048 cores; parallel
// efficiency below 50% at 256 cores — Fig. 5).
//
// Two parallelisation modes mirror Section IV-A:
//
//   - Spatial partitioning (the Base solver): each rank owns the droplets
//     inside its subdomain; every step ends with an alltoallv-style
//     redistribution plus a global load/count reduction. The pairwise
//     exchange's per-message overheads scale with the communicator size,
//     which is exactly what kills it at scale [43][44].
//   - Async task-based (the Optimized solver, Thari et al. [24][32]):
//     the spray runs on a dedicated communicator concurrently with the
//     flow solve, synchronising through one window-exchange per step, so
//     its cost leaves the solver's critical path. The paper sets the
//     optimised spray's effective parallel efficiency to ~100%.
//
// The droplet physics (work constants, drag response time, gas-velocity
// model, wall handling, injection geometry) is shared with the
// first-class coupled component in internal/particle, so the constants
// live in exactly one place; this package keeps its own rank-local RNG
// sampling and remains the differential oracle for the particle
// subsystem's static-split strategy.
package spray

import (
	"fmt"
	"math"
	"math/rand"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/order"
	"cpx/internal/particle"
)

// Message tags.
const tagMigrate = 40

// Config describes a spray population.
type Config struct {
	// Droplets is the true steady-state droplet population (the paper's
	// test cases: 7M droplets per 28M cells).
	Droplets int64
	// ConeFraction is the fraction of the unit domain the droplet cloud
	// occupies (clustered near the injector); drives load imbalance.
	ConeFraction float64
	// EvapSteps is the mean droplet lifetime in steps (recycled by
	// re-injection to keep the population stationary).
	EvapSteps int
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.ConeFraction == 0 {
		c.ConeFraction = 0.25
	}
	if c.EvapSteps == 0 {
		c.EvapSteps = 200
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Droplets < 1 {
		return fmt.Errorf("spray: need at least one droplet, got %d", c.Droplets)
	}
	if c.ConeFraction < 0 || c.ConeFraction > 1 {
		return fmt.Errorf("spray: cone fraction %v out of [0,1]", c.ConeFraction)
	}
	return nil
}

// ScaleOpts bound the allocated droplets per rank; zero disables capping.
type ScaleOpts struct {
	MaxDropletsPerRank int
}

// HybridThreads enables the hybrid MPI+OpenMP spatial partitioning of
// Section IV-A: droplets are owned per *node-level* rank group of the
// given thread count, shrinking the alltoallv schedule by that factor
// (shared memory handles the intra-group exchange) at the cost of an
// intra-node merge step. 0 or 1 is pure MPI.
func (cl *Cloud) SetHybridThreads(t int) {
	if t < 1 {
		t = 1
	}
	cl.hybridThreads = t
}

// Cloud is the per-rank droplet state under spatial partitioning on a
// 3-D process grid over the unit cube.
type Cloud struct {
	comm *mpi.Comm
	cfg  Config
	grid [3]int

	// Droplet state (SoA): position, velocity, radius.
	x, y, z    []float64
	vx, vy, vz []float64
	rad        []float64

	partScale float64 // true droplets per simulated droplet
	rng       *rand.Rand

	// hybridThreads > 1 enables hybrid MPI+OpenMP mode (Section IV-A):
	// the dense pairwise schedule spans only the node-level groups.
	hybridThreads int
}

// NewCloud creates the spatially-partitioned droplet population.
// Collective over c; grid must multiply to c.Size().
func NewCloud(c *mpi.Comm, grid [3]int, cfg Config, sc ScaleOpts) (*Cloud, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if grid[0]*grid[1]*grid[2] != c.Size() {
		return nil, fmt.Errorf("spray: grid %v does not cover %d ranks", grid, c.Size())
	}
	cl := &Cloud{comm: c, cfg: cfg, grid: grid,
		rng: rand.New(rand.NewSource(cfg.Seed + int64(c.Rank())*104729))}

	// Cloud region: a cone-ish box near the injector at the x=0 face,
	// occupying ConeFraction of the domain volume.
	side := particle.ConeSide(cfg.ConeFraction)
	// Global droplet positions are sampled rank-locally: each rank draws
	// its share of the droplets that fall inside its box.
	simTotal := int64(c.Size()) * 4096
	if simTotal > cfg.Droplets {
		simTotal = cfg.Droplets
	}
	if sc.MaxDropletsPerRank > 0 && simTotal > int64(sc.MaxDropletsPerRank)*int64(c.Size()) {
		simTotal = int64(sc.MaxDropletsPerRank) * int64(c.Size())
	}
	cl.partScale = float64(cfg.Droplets) / float64(simTotal)

	lo, hi := cl.boxOf(c.Rank())
	// Expected droplets in my box: overlap of my box with the cloud
	// region, times density.
	overlap := boxOverlap(lo, hi, [3]float64{0, 0.5 - side/2, 0.5 - side/2},
		[3]float64{side, 0.5 + side/2, 0.5 + side/2})
	mine := int(float64(simTotal) * overlap / (side * side * side))
	for i := 0; i < mine; i++ {
		px := cl.rng.Float64() * side
		py := 0.5 + (cl.rng.Float64()-0.5)*side
		pz := 0.5 + (cl.rng.Float64()-0.5)*side
		if !inBox(px, py, pz, lo, hi) {
			continue // sampled outside my box: belongs to a neighbour
		}
		cl.spawn(px, py, pz)
	}
	// Loading cost for the true population share.
	c.Compute(cluster.Work{Flops: 20 * float64(mine) * cl.partScale,
		Bytes: 64 * float64(mine) * cl.partScale})
	return cl, nil
}

func (cl *Cloud) spawn(px, py, pz float64) {
	cl.x = append(cl.x, px)
	cl.y = append(cl.y, py)
	cl.z = append(cl.z, pz)
	cl.vx = append(cl.vx, 0.3+0.1*cl.rng.NormFloat64())
	cl.vy = append(cl.vy, 0.05*cl.rng.NormFloat64())
	cl.vz = append(cl.vz, 0.05*cl.rng.NormFloat64())
	cl.rad = append(cl.rad, 1.0)
}

// boxOf returns rank r's subdomain of the unit cube.
func (cl *Cloud) boxOf(r int) (lo, hi [3]float64) {
	gx, gy, gz := cl.grid[0], cl.grid[1], cl.grid[2]
	cx, cy, cz := r%gx, (r/gx)%gy, r/(gx*gy)
	lo = [3]float64{float64(cx) / float64(gx), float64(cy) / float64(gy), float64(cz) / float64(gz)}
	hi = [3]float64{float64(cx+1) / float64(gx), float64(cy+1) / float64(gy), float64(cz+1) / float64(gz)}
	return
}

// ownerOf returns the rank owning a position.
func (cl *Cloud) ownerOf(px, py, pz float64) int {
	clampIdx := func(v float64, g int) int {
		i := int(v * float64(g))
		if i < 0 {
			i = 0
		}
		if i >= g {
			i = g - 1
		}
		return i
	}
	cx := clampIdx(px, cl.grid[0])
	cy := clampIdx(py, cl.grid[1])
	cz := clampIdx(pz, cl.grid[2])
	return (cz*cl.grid[1]+cy)*cl.grid[0] + cx
}

func inBox(px, py, pz float64, lo, hi [3]float64) bool {
	return px >= lo[0] && px < hi[0] && py >= lo[1] && py < hi[1] && pz >= lo[2] && pz < hi[2]
}

// boxOverlap returns the volume of the intersection of [alo,ahi] and
// [blo,bhi].
func boxOverlap(alo, ahi, blo, bhi [3]float64) float64 {
	v := 1.0
	for d := 0; d < 3; d++ {
		l := math.Max(alo[d], blo[d])
		h := math.Min(ahi[d], bhi[d])
		if h <= l {
			return 0
		}
		v *= h - l
	}
	return v
}

// Count returns the global simulated droplet count (collective).
func (cl *Cloud) Count() int { return cl.comm.AllreduceInt(len(cl.x), mpi.Sum) }

// TrueCount returns the represented true droplet population (collective).
func (cl *Cloud) TrueCount() float64 {
	return cl.comm.AllreduceScalar(float64(len(cl.x))*cl.partScale, mpi.Sum)
}

// Imbalance returns max/mean droplets per rank (collective).
func (cl *Cloud) Imbalance() float64 {
	n := float64(len(cl.x))
	maxN := cl.comm.AllreduceScalar(n, mpi.Max)
	sumN := cl.comm.AllreduceScalar(n, mpi.Sum)
	mean := sumN / float64(cl.comm.Size())
	if mean == 0 {
		return 1
	}
	return maxN / mean
}

// Step advances the droplets one time-step under spatial partitioning:
// drag/evaporation update, wall handling, redistribution to the owning
// ranks, and the global count reduction the load balancer performs.
func (cl *Cloud) Step(dt float64) {
	// Update phase: drag toward a swirling gas velocity, evaporation,
	// recycling of evaporated droplets at the injector.
	evap := 1.0 / float64(cl.cfg.EvapSteps)
	side := particle.ConeSide(cl.cfg.ConeFraction)
	lo, hi := cl.boxOf(cl.comm.Rank())
	injectorMine := inBox(particle.InjectorX, particle.InjectorY, particle.InjectorZ, lo, hi)
	for i := 0; i < len(cl.x); i++ {
		gx, gy, gz := particle.GasVelocity(cl.y[i], cl.z[i])
		cl.vx[i] += dt / particle.Tau * (gx - cl.vx[i])
		cl.vy[i] += dt / particle.Tau * (gy - cl.vy[i])
		cl.vz[i] += dt / particle.Tau * (gz - cl.vz[i])
		cl.x[i] += dt * cl.vx[i]
		cl.y[i] += dt * cl.vy[i]
		cl.z[i] += dt * cl.vz[i]
		cl.rad[i] -= evap * cl.rng.Float64() * 2
		// Reflect at lateral walls, absorb at the outlet (x > 1).
		particle.Reflect(&cl.y[i], &cl.vy[i])
		particle.Reflect(&cl.z[i], &cl.vz[i])
		if cl.x[i] < 0 {
			cl.x[i] = -cl.x[i]
			cl.vx[i] = -cl.vx[i]
		}
		if cl.rad[i] <= 0 || cl.x[i] >= 1 {
			// Evaporated or escaped: recycle at the injector cone if this
			// rank hosts it; otherwise drop (the injector rank re-seeds).
			if injectorMine {
				cl.x[i] = cl.rng.Float64() * side * 0.2
				cl.y[i] = 0.5 + (cl.rng.Float64()-0.5)*side*0.5
				cl.z[i] = 0.5 + (cl.rng.Float64()-0.5)*side*0.5
				cl.vx[i] = 0.3 + 0.1*cl.rng.NormFloat64()
				cl.rad[i] = 1.0
			} else {
				// Mark for removal by radius.
				cl.rad[i] = -1
			}
		}
	}
	cl.comm.Compute(cluster.Work{
		Flops: particle.DropletFlopsPerStep * float64(len(cl.x)) * cl.partScale,
		Bytes: particle.DropletBytesPerStep * float64(len(cl.x)) * cl.partScale,
	})
	cl.redistribute()
}

// redistribute moves each droplet to its owning rank. The production
// solver does this with an alltoallv; the per-message CPU overheads of
// the dense pairwise schedule are charged analytically while the
// non-empty payloads travel as real messages, and a global reduction
// (the balancer's census) synchronises the step.
func (cl *Cloud) redistribute() {
	p, r := cl.comm.Size(), cl.comm.Rank()
	buffers := map[int][]float64{}
	var kx, ky, kz, kvx, kvy, kvz, krad []float64
	for i := 0; i < len(cl.x); i++ {
		if cl.rad[i] < 0 {
			continue // removed
		}
		owner := cl.ownerOf(cl.x[i], cl.y[i], cl.z[i])
		if owner == r {
			kx = append(kx, cl.x[i])
			ky = append(ky, cl.y[i])
			kz = append(kz, cl.z[i])
			kvx = append(kvx, cl.vx[i])
			kvy = append(kvy, cl.vy[i])
			kvz = append(kvz, cl.vz[i])
			krad = append(krad, cl.rad[i])
		} else {
			buffers[owner] = append(buffers[owner],
				cl.x[i], cl.y[i], cl.z[i], cl.vx[i], cl.vy[i], cl.vz[i], cl.rad[i])
		}
	}
	removed := 0
	for i := 0; i < len(cl.x); i++ {
		if cl.rad[i] < 0 {
			removed++
		}
	}
	// Census: every rank learns how many inbound messages to expect, and
	// the balancer gets its global view (including the evaporated count
	// to replace) — one p-wide reduction per step, the collective the
	// paper blames for spray scaling.
	// Destination order is fixed once here and reused for the sends below,
	// whose virtual timestamps depend on it.
	dests := order.SortedKeys(buffers)
	indicators := make([]float64, p+1)
	for _, d := range dests {
		indicators[d] = 1
	}
	indicators[p] = float64(removed)
	census := cl.comm.Allreduce(indicators, mpi.Sum)
	inbound := int(census[r])
	lost := int(census[p])

	// Analytic charge for the dense pairwise schedule. Every pair of the
	// alltoallv exchanges droplet ownership updates plus the spray-solver
	// coupling payload (gas properties at droplet sites, source terms
	// back) — ~4 KiB per pair in the production code. This O(p) per-rank
	// schedule is what makes the spray routine 96% communication at
	// 2,048 cores (Fig. 5a).
	m := cl.comm.Machine()
	const pairBytes = 12288
	pairCost := m.SendOverhead + m.RecvOverhead + m.InterNodeLatency + pairBytes/m.EffectiveInterBW()
	schedule := p - 1
	if cl.hybridThreads > 1 {
		// Hybrid MPI+OpenMP: only one rank per thread group joins the
		// inter-group schedule; the intra-group merge costs one
		// shared-memory pass over the local droplets.
		schedule = (p+cl.hybridThreads-1)/cl.hybridThreads - 1
		cl.comm.Compute(cluster.Work{
			Flops: 4 * float64(len(cl.x)) * cl.partScale,
			Bytes: 24 * float64(len(cl.x)) * cl.partScale,
		})
	}
	if n := schedule - len(buffers); n > 0 {
		cl.comm.ChargeCommSeconds(float64(n) * pairCost)
	}
	// Real payload messages, in the deterministic destination order
	// established above.
	for _, d := range dests {
		buf := buffers[d]
		cl.comm.SendVirtual(d, tagMigrate, buf, int(float64(len(buf))*8*cl.partScale))
	}
	// Waitall-style batched receive: clock advance and droplet ordering
	// are both independent of host-side delivery order.
	batches, _ := cl.comm.RecvAll(inbound, tagMigrate)
	for _, d := range batches {
		for i := 0; i+6 < len(d); i += 7 {
			kx = append(kx, d[i])
			ky = append(ky, d[i+1])
			kz = append(kz, d[i+2])
			kvx = append(kvx, d[i+3])
			kvy = append(kvy, d[i+4])
			kvz = append(kvz, d[i+5])
			krad = append(krad, d[i+6])
		}
	}
	cl.x, cl.y, cl.z, cl.vx, cl.vy, cl.vz, cl.rad = kx, ky, kz, kvx, kvy, kvz, krad

	// The injector rank replaces globally lost droplets, keeping the
	// population stationary like a continuous fuel spray.
	if lost > 0 && cl.ownerOf(particle.InjectorX, particle.InjectorY, particle.InjectorZ) == r {
		side := particle.ConeSide(cl.cfg.ConeFraction)
		for k := 0; k < lost; k++ {
			cl.spawn(cl.rng.Float64()*side*0.2,
				0.5+(cl.rng.Float64()-0.5)*side*0.5,
				0.5+(cl.rng.Float64()-0.5)*side*0.5)
		}
	}
}

// StepWork returns the true per-step droplet work this rank represents
// (for external cost models).
func (cl *Cloud) StepWork() cluster.Work {
	return cluster.Work{
		Flops: particle.DropletFlopsPerStep * float64(len(cl.x)) * cl.partScale,
		Bytes: particle.DropletBytesPerStep * float64(len(cl.x)) * cl.partScale,
	}
}
