package spray

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

func cfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second}
}

func smallCloud() Config {
	return Config{Droplets: 50_000, ConeFraction: 0.25, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Droplets: 0}).Validate(); err == nil {
		t.Error("zero droplets accepted")
	}
	if err := (Config{Droplets: 10, ConeFraction: 1.5}).Validate(); err == nil {
		t.Error("cone fraction > 1 accepted")
	}
	if err := smallCloud().Validate(); err != nil {
		t.Error(err)
	}
}

func TestCloudRejectsBadGrid(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		if _, err := NewCloud(c, [3]int{3, 1, 1}, smallCloud(), ScaleOpts{}); err == nil {
			return fmt.Errorf("grid 3x1x1 over 4 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOwnership(t *testing.T) {
	_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{2, 2, 2}, smallCloud(), ScaleOpts{})
		if err != nil {
			return err
		}
		// ownerOf must be the inverse of boxOf membership.
		for r := 0; r < 8; r++ {
			lo, hi := cl.boxOf(r)
			mid := [3]float64{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2, (lo[2] + hi[2]) / 2}
			if got := cl.ownerOf(mid[0], mid[1], mid[2]); got != r {
				return fmt.Errorf("owner of centre of box %d = %d", r, got)
			}
		}
		// Clamping at the domain edges.
		if cl.ownerOf(-0.1, 0.5, 0.5) < 0 || cl.ownerOf(1.1, 0.99, 0.99) >= 8 {
			return fmt.Errorf("edge ownership out of range")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropletsLandOnOwningRanks(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{4, 1, 1}, smallCloud(), ScaleOpts{})
		if err != nil {
			return err
		}
		for s := 0; s < 5; s++ {
			cl.Step(0.01)
		}
		lo, hi := cl.boxOf(c.Rank())
		for i := range cl.x {
			if !inBox(cl.x[i], cl.y[i], cl.z[i], lo, hi) {
				return fmt.Errorf("rank %d holds droplet at (%v,%v,%v) outside its box",
					c.Rank(), cl.x[i], cl.y[i], cl.z[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectorClusteringCausesImbalance(t *testing.T) {
	_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{2, 2, 2}, Config{Droplets: 100_000, ConeFraction: 0.05, Seed: 2}, ScaleOpts{})
		if err != nil {
			return err
		}
		imb := cl.Imbalance()
		if c.Rank() == 0 && imb < 2 {
			return fmt.Errorf("tight cone should give imbalance >= 2, got %v", imb)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPopulationPersists(t *testing.T) {
	// With recycling at the injector, the population must not collapse.
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{4, 1, 1}, Config{Droplets: 20_000, EvapSteps: 50, Seed: 3}, ScaleOpts{})
		if err != nil {
			return err
		}
		initial := cl.Count()
		for s := 0; s < 100; s++ {
			cl.Step(0.01)
		}
		final := cl.Count()
		if final < initial/4 {
			return fmt.Errorf("population collapsed: %d -> %d", initial, final)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributionCostGrowsWithRanks(t *testing.T) {
	// The alltoallv-style schedule must make per-step comm grow with the
	// communicator size — the paper's central spray scaling observation.
	commTime := func(p int) float64 {
		st, err := mpi.Run(p, cfg(), func(c *mpi.Comm) error {
			// Uniform cloud: balanced load isolates the schedule overhead
			// from load-imbalance waiting.
			cl, err := NewCloud(c, [3]int{p, 1, 1},
				Config{Droplets: 50_000, ConeFraction: 1.0, Seed: 1},
				ScaleOpts{MaxDropletsPerRank: 100})
			if err != nil {
				return err
			}
			for s := 0; s < 3; s++ {
				cl.Step(0.01)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.AvgComm()
	}
	if !(commTime(16) > commTime(2)) {
		t.Error("redistribution comm should grow with rank count")
	}
}

func TestTrueCountScaling(t *testing.T) {
	_, err := mpi.Run(2, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{2, 1, 1},
			Config{Droplets: 1_000_000, ConeFraction: 0.5, Seed: 4},
			ScaleOpts{MaxDropletsPerRank: 1000})
		if err != nil {
			return err
		}
		tc := cl.TrueCount()
		// The represented population should be near the configured one
		// (sampling noise aside).
		if tc < 0.2e6 || tc > 2e6 {
			return fmt.Errorf("true count %v far from 1M", tc)
		}
		if cl.Count() > 2*1000*2 {
			return fmt.Errorf("sim count %d exceeds cap", cl.Count())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepDeterministic(t *testing.T) {
	once := func() float64 {
		st, err := mpi.Run(3, cfg(), func(c *mpi.Comm) error {
			cl, err := NewCloud(c, [3]int{3, 1, 1}, smallCloud(), ScaleOpts{})
			if err != nil {
				return err
			}
			for s := 0; s < 5; s++ {
				cl.Step(0.01)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if a, b := once(), once(); a != b {
		t.Errorf("spray not deterministic: %v vs %v", a, b)
	}
}

func TestRadiiStayPositive(t *testing.T) {
	_, err := mpi.Run(2, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{2, 1, 1}, smallCloud(), ScaleOpts{})
		if err != nil {
			return err
		}
		for s := 0; s < 20; s++ {
			cl.Step(0.01)
		}
		for _, r := range cl.rad {
			if r <= 0 {
				return fmt.Errorf("dead droplet survived redistribution: rad %v", r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridModeReducesScheduleCost(t *testing.T) {
	// Hybrid MPI+OpenMP (Section IV-A) shrinks the alltoallv schedule by
	// the thread count; per-step comm must fall at scale.
	commTime := func(threads int) float64 {
		st, err := mpi.Run(16, cfg(), func(c *mpi.Comm) error {
			cl, err := NewCloud(c, [3]int{16, 1, 1},
				Config{Droplets: 50_000, ConeFraction: 1.0, Seed: 1},
				ScaleOpts{MaxDropletsPerRank: 100})
			if err != nil {
				return err
			}
			cl.SetHybridThreads(threads)
			for s := 0; s < 3; s++ {
				cl.Step(0.01)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.AvgComm()
	}
	if !(commTime(8) < commTime(1)) {
		t.Error("hybrid threads did not reduce redistribution comm")
	}
}

func TestStepWorkPositive(t *testing.T) {
	_, err := mpi.Run(1, cfg(), func(c *mpi.Comm) error {
		cl, err := NewCloud(c, [3]int{1, 1, 1}, smallCloud(), ScaleOpts{})
		if err != nil {
			return err
		}
		w := cl.StepWork()
		if w.Flops <= 0 || w.Bytes <= 0 {
			return fmt.Errorf("work = %+v", w)
		}
		if math.IsNaN(w.Flops) {
			return fmt.Errorf("NaN work")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
