package telemetry

// DefaultFlightDepth is the per-rank flight-recorder capacity.
const DefaultFlightDepth = 64

// Flight-event kinds, stored as stable strings so the post-mortem JSON
// artifact is self-describing.
const (
	FlightSend       = "send"
	FlightRecv       = "recv"
	FlightCollective = "collective"
)

// FlightEvent is one recorded runtime event with its virtual timestamp.
type FlightEvent struct {
	T     float64 `json:"t"` // virtual seconds
	Kind  string  `json:"kind"`
	Peer  int     `json:"peer,omitempty"` // world rank of the peer (send/recv)
	Bytes int     `json:"bytes,omitempty"`
	Tag   int     `json:"tag,omitempty"`
	Op    string  `json:"op,omitempty"` // collective operation name
}

// FlightRecorder is a bounded ring buffer of a rank's most recent
// runtime events — the post-mortem trail a crashed or cancelled run
// dumps into its partial artifact. Owned by the rank goroutine during
// the run; read only after it.
type FlightRecorder struct {
	buf   []FlightEvent
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last `depth` events;
// depth <= 0 selects DefaultFlightDepth.
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, depth)}
}

// Record appends an event, evicting the oldest once full.
func (f *FlightRecorder) Record(ev FlightEvent) {
	f.total++
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
		return
	}
	f.buf[f.next] = ev
	f.next = (f.next + 1) % len(f.buf)
}

// Total returns how many events were recorded over the run (not just
// the retained tail).
func (f *FlightRecorder) Total() uint64 { return f.total }

// Tail returns the retained events in chronological order.
func (f *FlightRecorder) Tail() []FlightEvent {
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// RankTail is one rank's flight-recorder dump.
type RankTail struct {
	Rank     int           `json:"rank"`
	FailedAt float64       `json:"failed_at,omitempty"` // virtual death time; 0 when the rank did not die
	Total    uint64        `json:"events_total"`
	Events   []FlightEvent `json:"events"`
}
