package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"cpx/internal/order"
)

// RankSeries is one rank's completed time-series.
type RankSeries struct {
	Rank int `json:"rank"`
	// Samples are the stored boundary samples, in virtual-time order
	// (sample i sits at T = (i+1)*Interval until the storage cap).
	Samples []Sample `json:"samples"`
	// Dropped counts boundary samples discarded after the cap.
	Dropped int `json:"dropped,omitempty"`
	// Totals holds the cumulative counters at the rank's final clock
	// (Totals.T is the rank's exit time, off the sample grid).
	Totals Sample `json:"totals"`
}

// LabelSeries is an aggregated per-component time-series: the
// element-wise sum of the member ranks' samples.
type LabelSeries struct {
	Label   string   `json:"label"`
	Ranks   int      `json:"ranks"`
	Samples []Sample `json:"samples"`
	Totals  Sample   `json:"totals"`
}

// RunSeries is the complete metrics product of one run.
type RunSeries struct {
	Interval float64      `json:"interval_s"`
	Ranks    []RankSeries `json:"ranks"`
	// Components is the per-component aggregation, filled by callers
	// that know the rank→component mapping (the coupler).
	Components []LabelSeries `json:"components,omitempty"`
}

// Finalize assembles the RunSeries from a run's collectors (indexed by
// world rank), materialising each rank's mailbox-depth gauge from its
// receiver-side arrival buckets. Every input is a virtual timestamp or
// a count derived from one, so the result is a pure function of the
// run's virtual-time history.
func Finalize(collectors []*Collector) *RunSeries {
	if len(collectors) == 0 {
		return nil
	}
	rs := &RunSeries{Interval: collectors[0].interval, Ranks: make([]RankSeries, len(collectors))}
	for r, c := range collectors {
		ser := RankSeries{Rank: c.rank, Samples: c.samples, Dropped: c.dropped, Totals: c.cur}
		// Prefix-sum the arrival buckets onto the sample grid: depth at
		// sample k = arrivals with arrival <= k*interval − receives
		// completed by k*interval.
		buckets := c.arrivals
		arrived := uint64(0)
		totalArrived := uint64(0)
		for _, n := range buckets {
			totalArrived += n
		}
		next := 0
		for i := range ser.Samples {
			k := i + 1
			for next < len(buckets) && next <= k {
				arrived += buckets[next]
				next++
			}
			ser.Samples[i].MailboxDepth = int64(arrived) - int64(ser.Samples[i].MsgsRecv)
		}
		ser.Totals.MailboxDepth = int64(totalArrived) - int64(ser.Totals.MsgsRecv)
		rs.Ranks[r] = ser
	}
	return rs
}

// AggregateBy sums the per-rank series into one series per label (e.g.
// the coupled simulation's instance/unit names). Ranks whose series is
// shorter than the label's longest member contribute their final stored
// sample to the remaining points — the counters are cumulative, so a
// finished rank's contribution correctly stays flat. Labels are emitted
// in sorted order.
func (rs *RunSeries) AggregateBy(label func(rank int) string) []LabelSeries {
	members := make(map[string][]int)
	for r := range rs.Ranks {
		l := label(rs.Ranks[r].Rank)
		members[l] = append(members[l], r)
	}
	out := make([]LabelSeries, 0, len(members))
	for _, l := range order.SortedKeys(members) {
		ls := LabelSeries{Label: l, Ranks: len(members[l])}
		maxLen := 0
		for _, r := range members[l] {
			if n := len(rs.Ranks[r].Samples); n > maxLen {
				maxLen = n
			}
		}
		ls.Samples = make([]Sample, maxLen)
		for i := 0; i < maxLen; i++ {
			ls.Samples[i].T = float64(i+1) * rs.Interval
		}
		for _, r := range members[l] {
			ser := &rs.Ranks[r]
			for i := 0; i < maxLen; i++ {
				j := i
				if j >= len(ser.Samples) {
					j = len(ser.Samples) - 1
				}
				if j < 0 {
					continue
				}
				s := ser.Samples[j]
				s.T = 0 // keep the grid time set above
				ls.Samples[i].add(s)
			}
			ls.Totals.add(ser.Totals)
		}
		// add() has no business summing exit times; report the latest.
		t := 0.0
		for _, r := range members[l] {
			if rs.Ranks[r].Totals.T > t {
				t = rs.Ranks[r].Totals.T
			}
		}
		ls.Totals.T = t
		out = append(out, ls)
	}
	return out
}

// WriteJSON emits the series as indented JSON.
func (rs *RunSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// csvHeader is the long-format CSV column set.
const csvHeader = "series,rank,t,compute_s,comm_s,wait_s,msgs_sent,msgs_recv,bytes_sent,bytes_recv,collectives,mailbox_depth\n"

func writeCSVRow(w io.Writer, series string, rank int, s Sample) error {
	_, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d\n",
		series, rank, s.T, s.Compute, s.Comm, s.Wait,
		s.MsgsSent, s.MsgsRecv, s.BytesSent, s.BytesRecv, s.Collectives, s.MailboxDepth)
	return err
}

// WriteCSV emits the series in long format: one row per sample, rank
// series first (series column "rank"), then any per-component
// aggregations (series column = the component label, rank -1).
func (rs *RunSeries) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for _, ser := range rs.Ranks {
		for _, s := range ser.Samples {
			if err := writeCSVRow(w, "rank", ser.Rank, s); err != nil {
				return err
			}
		}
	}
	for _, ls := range rs.Components {
		for _, s := range ls.Samples {
			if err := writeCSVRow(w, ls.Label, -1, s); err != nil {
				return err
			}
		}
	}
	return nil
}
