// Package telemetry is the live-observability layer of the virtual-time
// runtime: per-rank metrics sampled at fixed *virtual-time* intervals,
// and a bounded flight recorder of recent runtime events for post-mortem
// dumps of crashed or cancelled runs.
//
// Determinism is the design constraint. Every sample point is derived
// from the rank's virtual clock — never the host clock — and the
// collector only *observes* charges the runtime was already making: it
// keeps separate accumulators and never modifies the existing clock or
// accounting arithmetic. A run with metrics on therefore produces
// bitwise-identical virtual times, statistics and traces to the same run
// with metrics off (enforced by differential tests in internal/mpi and
// internal/coupler), and the metric series themselves are identical
// across host parallelism levels.
//
// Mailbox depth is the one gauge a naive implementation would make
// host-scheduling-dependent (the instantaneous length of a mailbox
// depends on which goroutine ran first). It is instead defined purely in
// virtual time: depth at sample point kΔ is the number of messages whose
// virtual *arrival* is <= kΔ minus the number of receives the rank had
// *completed* by kΔ. Both timestamps are known to the receiver when a
// receive completes (completion is always >= arrival, so the gauge is
// never negative), so arrivals are bucketed receiver-side into one dense
// per-rank array — no cross-rank merge, no per-message storage. The one
// consequence: a message that is never received does not enter the
// gauge, making it the depth of the eventually-consumed queue. Every
// input is a function of virtual timestamps only.
package telemetry

import "math"

// DefaultInterval is the virtual-time sampling period in seconds.
const DefaultInterval = 0.01

// DefaultMaxSamples bounds the samples stored per rank. Once the cap is
// reached further boundary samples are counted as dropped; cumulative
// totals and live Observer snapshots continue.
const DefaultMaxSamples = 1024

// Config enables metrics collection on a run.
type Config struct {
	// Interval is the virtual-time sampling period in seconds;
	// <= 0 selects DefaultInterval.
	Interval float64
	// MaxSamples caps the stored samples per rank; <= 0 selects
	// DefaultMaxSamples.
	MaxSamples int
	// Observer, when non-nil, receives a live snapshot each time a rank
	// crosses a sample boundary (and, past the storage cap, once per
	// clock charge). It is invoked from rank goroutines — and, on the
	// analytic-collective fast path, from the replay leader on other
	// ranks' behalf — so it must be safe for concurrent use and must not
	// block. Mailbox depth is not available live (it needs the post-run
	// arrival merge) and is always zero in Observer snapshots.
	Observer func(rank int, s Sample)
}

func (c *Config) interval() float64 {
	if c.Interval > 0 {
		return c.Interval
	}
	return DefaultInterval
}

func (c *Config) maxSamples() int {
	if c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return DefaultMaxSamples
}

// ChargeKind classifies a virtual-time charge for the compute/comm/wait
// split of a sample.
type ChargeKind uint8

// Charge kinds.
const (
	// ChargeCompute is modelled computation.
	ChargeCompute ChargeKind = iota
	// ChargeComm is directly charged communication time (per-message CPU
	// overheads, analytic schedules, stretched sub-steps).
	ChargeComm
	// ChargeWait is time blocked on a message still in flight.
	ChargeWait
)

// Sample is one point of a rank's time-series. All counters are
// cumulative since the start of the run, so any sample is also a
// progress snapshot and per-interval rates are first differences.
type Sample struct {
	T           float64 `json:"t"` // virtual time of the sample point
	Compute     float64 `json:"compute_s"`
	Comm        float64 `json:"comm_s"`
	Wait        float64 `json:"wait_s"`
	MsgsSent    uint64  `json:"msgs_sent"`
	MsgsRecv    uint64  `json:"msgs_recv"`
	BytesSent   uint64  `json:"bytes_sent"`
	BytesRecv   uint64  `json:"bytes_recv"`
	Collectives uint64  `json:"collectives"`
	// MailboxDepth is the virtual-time mailbox gauge: messages with
	// arrival <= T minus receives completed by T. Filled by Finalize;
	// zero in live Observer snapshots.
	MailboxDepth int64 `json:"mailbox_depth"`
}

// add accumulates src's counters into s (element-wise; T is kept).
func (s *Sample) add(src Sample) {
	s.Compute += src.Compute
	s.Comm += src.Comm
	s.Wait += src.Wait
	s.MsgsSent += src.MsgsSent
	s.MsgsRecv += src.MsgsRecv
	s.BytesSent += src.BytesSent
	s.BytesRecv += src.BytesRecv
	s.Collectives += src.Collectives
	s.MailboxDepth += src.MailboxDepth
}

// Collector accumulates one rank's metrics during a run. It is owned by
// the rank's goroutine (or, on the analytic-collective fast path, by the
// replay leader while every other member is parked) and read only after
// the run completes. All methods are driven by virtual-time values.
type Collector struct {
	// nextT and cur's leading time fields sit first so the per-charge
	// fast path (one compare, one direct field add) stays within one
	// cache line — at 512 ranks the hook runs hundreds of thousands of
	// times per run and extra line traffic is the dominant cost.
	nextT float64 // nextK*interval, cached so the per-charge fast path is one compare
	cur   Sample  // cumulative totals; cur.T tracks the rank clock

	rank        int
	interval    float64
	invInterval float64 // 1/interval: turns the per-send bucket division into a multiply
	maxSamples  int
	observer    func(rank int, s Sample)
	nextK       int // index of the next sample boundary
	samples     []Sample
	dropped     int

	// arrivals[b] counts messages this rank received whose virtual
	// arrival fell in sample bucket b (clamped to maxSamples+1).
	// Recorded at receive completion, when the arrival timestamp is in
	// hand; Finalize prefix-sums it onto the sample grid to materialise
	// mailbox depth. arrPtr caches the counter of the bucket holding
	// arrLast, the previous arrival time, so the repeat-arrival fast
	// path in Received is a single equality compare — virtual arrivals
	// cluster at identical timestamps during synchronized phases. The
	// constructors seed arrLast with NaN (never equal), forcing the
	// first receive down the slow path before arrPtr is read.
	arrLast  float64
	arrPtr   *uint64
	arrivals []uint64
}

// NewCollector returns a collector for one rank.
func NewCollector(rank int, cfg *Config) *Collector {
	iv := cfg.interval()
	c := &Collector{
		rank:        rank,
		interval:    iv,
		invInterval: 1 / iv,
		maxSamples:  cfg.maxSamples(),
		observer:    cfg.Observer,
		nextK:       1,
		nextT:       iv,
		arrLast:     math.NaN(),
	}
	return c
}

// NewCollectors returns one collector per rank for a whole run. The
// collectors, their initial sample storage and their arrival buckets
// are carved out of three shared slabs — three allocations instead of
// ~3n, which matters at hundreds of ranks where per-run GC pressure is
// the dominant metrics cost. Each rank's carve is capacity-bounded
// (three-index slices), so a rank outgrowing its carve reallocates
// privately and never touches a neighbour's storage.
func NewCollectors(n int, cfg *Config) []*Collector {
	cs := make([]Collector, n)
	sampleSeed := cfg.maxSamples()
	if sampleSeed > 24 {
		sampleSeed = 24
	}
	arrivalSeed := cfg.maxSamples() + 2
	if arrivalSeed > 26 {
		arrivalSeed = 26
	}
	sampleSlab := make([]Sample, n*sampleSeed)
	arrivalSlab := make([]uint64, n*arrivalSeed)
	out := make([]*Collector, n)
	iv := cfg.interval()
	for i := range cs {
		c := &cs[i]
		c.rank = i
		c.interval = iv
		c.invInterval = 1 / iv
		c.maxSamples = cfg.maxSamples()
		c.observer = cfg.Observer
		c.nextK = 1
		c.nextT = iv
		c.arrLast = math.NaN()
		c.samples = sampleSlab[i*sampleSeed : i*sampleSeed : (i+1)*sampleSeed]
		c.arrivals = arrivalSlab[i*arrivalSeed : i*arrivalSeed : (i+1)*arrivalSeed]
		out[i] = c
	}
	return out
}

// Rank returns the rank this collector belongs to.
func (c *Collector) Rank() int { return c.rank }

// bucketOf returns the first sample index k with k*interval >= t. The
// reciprocal multiply only seeds the estimate; the exact comparisons
// below pin it to the minimal k, so the result is identical to the
// division form.
func (c *Collector) bucketOf(t float64) int {
	k := int(t * c.invInterval)
	if float64(k)*c.interval < t {
		k++
	}
	for k > 0 && float64(k-1)*c.interval >= t {
		k--
	}
	return k
}

// Advance accounts a clock charge of the given kind over virtual
// [t0, t1]. Crossing a sample boundary emits a sample with the charge
// prorated linearly to the boundary — extra arithmetic on separate
// accumulators, never a change to the runtime's own numbers. The
// common no-boundary case is a single compare and add (small enough to
// inline into the runtime's charge sites); cur.T is deliberately not
// maintained here — boundary crossings set it, and the run stamps the
// final clock via Finish.
func (c *Collector) Advance(t0, t1 float64, kind ChargeKind) {
	if t1 < c.nextT {
		c.charge(t1-t0, kind)
		return
	}
	c.advanceSlow(t0, t1, kind)
}

// AdvanceCompute, AdvanceComm and AdvanceWait are Advance with the kind
// fixed at the call site. The runtime's charge paths use them: with the
// kind constant the fast path compiles to one compare and one direct
// field add, with no per-kind indirection to load.

// AdvanceCompute is Advance with ChargeCompute.
//
//perf:inline
//perf:noescape
func (c *Collector) AdvanceCompute(t0, t1 float64) {
	if t1 < c.nextT {
		c.cur.Compute += t1 - t0
		return
	}
	c.advanceSlow(t0, t1, ChargeCompute)
}

// AdvanceComm is Advance with ChargeComm.
//
//perf:inline
//perf:noescape
func (c *Collector) AdvanceComm(t0, t1 float64) {
	if t1 < c.nextT {
		c.cur.Comm += t1 - t0
		return
	}
	c.advanceSlow(t0, t1, ChargeComm)
}

// AdvanceWait is Advance with ChargeWait.
//
//perf:inline
//perf:noescape
func (c *Collector) AdvanceWait(t0, t1 float64) {
	if t1 < c.nextT {
		c.cur.Wait += t1 - t0
		return
	}
	c.advanceSlow(t0, t1, ChargeWait)
}

// Finish stamps the rank's final virtual clock on the cumulative
// totals. Call once when the rank completes (or dies).
//
//perf:inline
func (c *Collector) Finish(clock float64) {
	if clock > c.cur.T {
		c.cur.T = clock
	}
}

// advanceSlow handles charges that cross at least one sample boundary.
func (c *Collector) advanceSlow(t0, t1 float64, kind ChargeKind) {
	c.cur.T = t1
	if len(c.samples) >= c.maxSamples {
		// Storage is capped: accumulate totals, count the boundaries this
		// charge crossed as dropped, and keep live snapshots flowing at
		// charge granularity instead of walking every boundary.
		c.charge(t1-t0, kind)
		lastK := int(t1 * c.invInterval)
		if float64(lastK)*c.interval > t1 {
			lastK--
		}
		for float64(lastK+1)*c.interval <= t1 {
			lastK++
		}
		c.dropped += lastK - c.nextK + 1
		c.nextK = lastK + 1
		c.nextT = float64(c.nextK) * c.interval
		if c.observer != nil {
			c.observer(c.rank, c.cur)
		}
		return
	}
	cur := t0
	for c.nextT <= t1 {
		next := c.nextT
		c.charge(next-cur, kind)
		cur = next
		c.emit(next)
		c.nextK++
		c.nextT = float64(c.nextK) * c.interval
		if len(c.samples) >= c.maxSamples {
			// The cap landed mid-charge: fall through to the capped path
			// for the remainder.
			if cur < t1 {
				c.advanceSlow(cur, t1, kind)
			}
			return
		}
	}
	c.charge(t1-cur, kind)
}

func (c *Collector) charge(s float64, kind ChargeKind) {
	switch kind {
	case ChargeCompute:
		c.cur.Compute += s
	case ChargeWait:
		c.cur.Wait += s
	default:
		c.cur.Comm += s
	}
}

// emit stores (and publishes) the sample at boundary time t.
func (c *Collector) emit(t float64) {
	s := c.cur
	s.T = t
	if c.samples == nil {
		// Seed a useful capacity so short series don't churn the GC
		// through the small append-doubling steps.
		seed := c.maxSamples
		if seed > 24 {
			seed = 24
		}
		c.samples = make([]Sample, 0, seed)
	}
	c.samples = append(c.samples, s)
	if c.observer != nil {
		c.observer(c.rank, s)
	}
}

// Sent records one outgoing message.
//
//perf:inline
//perf:noescape
func (c *Collector) Sent(bytes int) {
	c.cur.MsgsSent++
	c.cur.BytesSent += uint64(bytes)
}

// Received records one completed receive and the received message's
// virtual arrival time. Receives are counted at the virtual time the
// receive overhead finished charging, which is always >= the arrival —
// mailbox depth can therefore never go negative. Arrivals cluster at
// identical virtual timestamps (collective phases deliver whole waves
// at one clock value), so the previous arrival's bucket counter is
// cached keyed by the exact arrival time: the repeat case is one
// equality compare and an add, small enough to inline at the runtime's
// receive sites (perfgate holds it to the inliner budget).
//
//perf:inline
//perf:noescape
func (c *Collector) Received(bytes uint64, arrival float64) {
	c.cur.MsgsRecv++
	c.cur.BytesRecv += bytes
	if arrival == c.arrLast {
		*c.arrPtr++
	} else {
		c.receivedSlow(arrival)
	}
}

// receivedSlow buckets an arrival that differs from the cached arrival
// time and refreshes the cache. The cache is only ever set to a bucket
// the arrivals array already covers, so the fast path needs no length
// check beyond the compiler's own.
func (c *Collector) receivedSlow(arrival float64) {
	b := c.bucketOf(arrival)
	if b > c.maxSamples {
		// Beyond every storable sample point; one overflow bucket bounds
		// the storage regardless of how far arrivals outrun the cap.
		b = c.maxSamples + 1
	}
	if len(c.arrivals) <= b {
		if cap(c.arrivals) <= b {
			// Arrival buckets fill roughly in clock order, so growing one
			// bucket at a time would reallocate on every boundary; seed a
			// useful capacity up front (mirroring the samples seed) and
			// double from there.
			capacity := 2 * (b + 1)
			if seed := c.maxSamples + 2; seed > capacity {
				if seed > 26 {
					seed = 26
				}
				if seed > capacity {
					capacity = seed
				}
			}
			grown := make([]uint64, b+1, capacity)
			copy(grown, c.arrivals)
			c.arrivals = grown
		} else {
			c.arrivals = c.arrivals[:b+1] // extension was zeroed by make
		}
	}
	c.arrivals[b]++
	// Cache the bucket's counter keyed by the exact arrival time: a
	// repeat of the same virtual timestamp lands in the same bucket by
	// construction, so the fast path needs no edge arithmetic at all.
	c.arrPtr = &c.arrivals[b]
	c.arrLast = arrival
}

// Collective records entry into an outermost collective operation.
//
//perf:inline
func (c *Collector) Collective() { c.cur.Collectives++ }

// Totals returns the cumulative counters at the rank's final clock.
func (c *Collector) Totals() Sample { return c.cur }
