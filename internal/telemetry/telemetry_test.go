package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// TestAdvanceProratesAcrossBoundaries: a single charge spanning several
// sample boundaries must emit one sample per boundary with the charge
// split linearly, and leave the cumulative totals exact.
func TestAdvanceProratesAcrossBoundaries(t *testing.T) {
	c := NewCollector(0, &Config{Interval: 1.0})
	c.Advance(0, 2.5, ChargeCompute) // crosses t=1 and t=2
	c.Advance(2.5, 3.0, ChargeComm)  // ends exactly on t=3
	if len(c.samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(c.samples))
	}
	wantCompute := []float64{1.0, 2.0, 2.5}
	wantComm := []float64{0, 0, 0.5}
	for i, s := range c.samples {
		if s.T != float64(i+1) {
			t.Errorf("sample %d at T=%v, want %v", i, s.T, float64(i+1))
		}
		if s.Compute != wantCompute[i] || s.Comm != wantComm[i] {
			t.Errorf("sample %d compute/comm = %v/%v, want %v/%v",
				i, s.Compute, s.Comm, wantCompute[i], wantComm[i])
		}
	}
	tot := c.Totals()
	if tot.Compute != 2.5 || tot.Comm != 0.5 || tot.T != 3.0 {
		t.Errorf("totals = %+v", tot)
	}
}

// TestSampleCapCountsDropped: past MaxSamples the collector stops
// storing but keeps exact cumulative totals and counts what it dropped.
func TestSampleCapCountsDropped(t *testing.T) {
	c := NewCollector(0, &Config{Interval: 1.0, MaxSamples: 2})
	c.Advance(0, 5.0, ChargeCompute) // boundaries 1..5
	if len(c.samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(c.samples))
	}
	if c.dropped != 3 {
		t.Errorf("dropped = %d, want 3", c.dropped)
	}
	if got := c.Totals().Compute; got != 5.0 {
		t.Errorf("total compute = %v, want 5", got)
	}
}

// TestObserverSeesMonotoneProgress: live snapshots carry monotonically
// non-decreasing virtual time, including past the storage cap.
func TestObserverSeesMonotoneProgress(t *testing.T) {
	var ts []float64
	c := NewCollector(3, &Config{Interval: 1.0, MaxSamples: 2, Observer: func(rank int, s Sample) {
		if rank != 3 {
			t.Fatalf("observer rank = %d, want 3", rank)
		}
		ts = append(ts, s.T)
	}})
	c.Advance(0, 2.5, ChargeCompute)
	c.Advance(2.5, 4.5, ChargeComm)
	if len(ts) < 3 {
		t.Fatalf("observer called %d times, want >= 3", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatalf("observer T went backwards: %v", ts)
		}
	}
}

// TestFinalizeMailboxDepth: depth at a sample point is arrivals <= T
// minus receives completed by T, both recorded receiver-side.
func TestFinalizeMailboxDepth(t *testing.T) {
	cfg := &Config{Interval: 1.0}
	c0 := NewCollector(0, cfg) // sender
	c1 := NewCollector(1, cfg) // receiver
	// Rank 0 sends two messages to rank 1 arriving at t=0.5 and t=1.5.
	c0.Sent(8)
	c0.Sent(8)
	c0.Advance(0, 3.0, ChargeComm)
	// Rank 1 completes one receive before t=2, the second before t=3.
	c1.Advance(0, 1.8, ChargeWait)
	c1.Received(8, 0.5)
	c1.Advance(1.8, 2.2, ChargeWait)
	c1.Received(8, 1.5)
	c1.Advance(2.2, 3.0, ChargeCompute)

	rs := Finalize([]*Collector{c0, c1})
	depths := make([]int64, len(rs.Ranks[1].Samples))
	for i, s := range rs.Ranks[1].Samples {
		depths[i] = s.MailboxDepth
	}
	// t=1: one arrival, zero receives → 1. t=2: two arrivals, one
	// receive (completed at 1.8... wait, the first Received lands after
	// the sample at t=1.8? It lands at the rank clock 1.8, so by t=2 it
	// counts) → wait: receives at samples are the cumulative MsgsRecv at
	// the boundary. At t=2 the boundary sample was emitted mid-Advance
	// (1.8,2.2) *before* the second Received → MsgsRecv=1 → depth 1.
	// t=3: two arrivals, two receives → 0.
	want := []int64{1, 1, 0}
	if !reflect.DeepEqual(depths, want) {
		t.Errorf("depths = %v, want %v", depths, want)
	}
	for _, s := range rs.Ranks[1].Samples {
		if s.MailboxDepth < 0 {
			t.Errorf("negative mailbox depth at T=%v", s.T)
		}
	}
	if rs.Ranks[1].Totals.MailboxDepth != 0 {
		t.Errorf("final depth = %d, want 0", rs.Ranks[1].Totals.MailboxDepth)
	}
}

// TestAggregateBySumsAndPadsShortSeries: aggregation sums element-wise
// and carries a finished rank's last sample forward.
func TestAggregateBySumsAndPadsShortSeries(t *testing.T) {
	cfg := &Config{Interval: 1.0}
	c0 := NewCollector(0, cfg)
	c1 := NewCollector(1, cfg)
	c0.Advance(0, 1.0, ChargeCompute) // one sample
	c1.Advance(0, 2.0, ChargeCompute) // two samples
	rs := Finalize([]*Collector{c0, c1})
	agg := rs.AggregateBy(func(rank int) string { return "comp" })
	if len(agg) != 1 || agg[0].Label != "comp" || agg[0].Ranks != 2 {
		t.Fatalf("agg = %+v", agg)
	}
	if len(agg[0].Samples) != 2 {
		t.Fatalf("got %d aggregated samples, want 2", len(agg[0].Samples))
	}
	// t=1: 1+1. t=2: rank 0 carries its last sample (1) + rank 1's 2.
	if agg[0].Samples[0].Compute != 2.0 || agg[0].Samples[1].Compute != 3.0 {
		t.Errorf("aggregated compute = %v, %v; want 2, 3",
			agg[0].Samples[0].Compute, agg[0].Samples[1].Compute)
	}
	if agg[0].Totals.Compute != 3.0 || agg[0].Totals.T != 2.0 {
		t.Errorf("aggregated totals = %+v", agg[0].Totals)
	}
}

// TestWriteCSVShape: the CSV export has the documented header and one
// row per sample.
func TestWriteCSVShape(t *testing.T) {
	cfg := &Config{Interval: 1.0}
	c0 := NewCollector(0, cfg)
	c0.Advance(0, 2.0, ChargeCompute)
	rs := Finalize([]*Collector{c0})
	rs.Components = rs.AggregateBy(func(int) string { return "all" })
	var sb strings.Builder
	if err := rs.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "series,rank,t,") {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+2+2 { // header + 2 rank rows + 2 component rows
		t.Errorf("got %d lines: %q", len(lines), sb.String())
	}
}

// TestFlightRecorderRingSemantics: the recorder keeps the last `depth`
// events in chronological order and counts the total.
func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(FlightEvent{T: float64(i), Kind: FlightSend, Peer: i})
	}
	tail := f.Tail()
	if f.Total() != 5 {
		t.Errorf("total = %d, want 5", f.Total())
	}
	if len(tail) != 3 {
		t.Fatalf("tail length = %d, want 3", len(tail))
	}
	for i, ev := range tail {
		if ev.T != float64(i+2) {
			t.Errorf("tail[%d].T = %v, want %v", i, ev.T, float64(i+2))
		}
	}
}
