package trace

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// CommEdge is one directed rank-pair entry of the communication matrix.
type CommEdge struct {
	Src, Dst int
	Messages int64
	Bytes    int64
}

// CommMatrix is a sparse rank×rank communication matrix: one edge per
// (source, destination) pair that exchanged at least one message. Sparse
// storage keeps 40,000-rank nearest-neighbour runs at O(messages pairs),
// not O(ranks²).
type CommMatrix struct {
	Ranks int
	Edges []CommEdge // sorted by (Src, Dst)
}

// AddEdge accumulates messages/bytes on a directed pair. Edges may be
// added in any order; call Sort (or use WriteCSV, which sorts) before
// relying on ordering.
func (m *CommMatrix) AddEdge(src, dst int, messages, bytes int64) {
	m.Edges = append(m.Edges, CommEdge{Src: src, Dst: dst, Messages: messages, Bytes: bytes})
}

// Sort orders edges by (Src, Dst) and merges duplicates.
func (m *CommMatrix) Sort() {
	if m == nil {
		return
	}
	sort.Slice(m.Edges, func(i, j int) bool {
		if m.Edges[i].Src != m.Edges[j].Src {
			return m.Edges[i].Src < m.Edges[j].Src
		}
		return m.Edges[i].Dst < m.Edges[j].Dst
	})
	out := m.Edges[:0]
	for _, e := range m.Edges {
		if n := len(out); n > 0 && out[n-1].Src == e.Src && out[n-1].Dst == e.Dst {
			out[n-1].Messages += e.Messages
			out[n-1].Bytes += e.Bytes
			continue
		}
		out = append(out, e)
	}
	m.Edges = out
}

// Totals returns the total message and byte counts over all edges.
func (m *CommMatrix) Totals() (messages, bytes int64) {
	if m == nil {
		return 0, 0
	}
	for _, e := range m.Edges {
		messages += e.Messages
		bytes += e.Bytes
	}
	return
}

// WriteCSV emits the sparse matrix as "src,dst,messages,bytes" rows in
// (src, dst) order, for external heat-map plotting. A nil matrix (an
// untraced or aborted run) writes just the header, so exporting partial
// artifacts never panics.
func (m *CommMatrix) WriteCSV(w io.Writer) error {
	m.Sort()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"src", "dst", "messages", "bytes"}); err != nil {
		return err
	}
	if m == nil {
		cw.Flush()
		return cw.Error()
	}
	for _, e := range m.Edges {
		rec := []string{
			strconv.Itoa(e.Src),
			strconv.Itoa(e.Dst),
			strconv.FormatInt(e.Messages, 10),
			strconv.FormatInt(e.Bytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
