package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Segment is one span of the critical path: a contiguous stretch of
// virtual time on one rank (or, for wait segments, the in-flight message
// that blocked it, attributed to the receiving rank).
type Segment struct {
	Rank   int
	Kind   EventKind
	Region string
	Op     string
	T0, T1 float64
}

// Duration returns the segment's virtual extent.
func (s Segment) Duration() float64 { return s.T1 - s.T0 }

// CriticalPath is the causally contiguous chain of segments that sets a
// run's end-to-end virtual time: the one sequence of compute, message
// overheads and in-flight waits that no rearrangement of the other ranks
// could shorten. Segments tile [0, Elapsed] in time order, so their
// durations telescope to the run's elapsed time.
type CriticalPath struct {
	Segments []Segment
	Elapsed  float64 // end time of the path = the maximum rank clock
	EndRank  int     // rank whose clock set Elapsed
}

// Total returns the summed segment durations. For a complete set of
// timelines this equals Elapsed up to floating-point summation order.
func (cp *CriticalPath) Total() float64 {
	t := 0.0
	for _, s := range cp.Segments {
		t += s.Duration()
	}
	return t
}

// ByKind sums path time per event kind.
func (cp *CriticalPath) ByKind() map[string]float64 {
	out := map[string]float64{}
	for _, s := range cp.Segments {
		out[s.Kind.String()] += s.Duration()
	}
	return out
}

// RegionTime attributes critical-path time to one region, split into the
// compute and communication (send/recv/wait/comm) parts.
type RegionTime struct {
	Region  string  `json:"region"`
	Compute float64 `json:"compute_s"`
	Comm    float64 `json:"comm_s"`
}

// Total returns the region's overall path time.
func (r RegionTime) Total() float64 { return r.Compute + r.Comm }

// ByRegion attributes path time to profile regions, sorted by descending
// total time (name-ascending on ties).
func (cp *CriticalPath) ByRegion() []RegionTime {
	acc := map[string]*RegionTime{}
	for _, s := range cp.Segments {
		region := s.Region
		if region == "" {
			region = "other"
		}
		rt := acc[region]
		if rt == nil {
			rt = &RegionTime{Region: region}
			acc[region] = rt
		}
		if s.Kind == EvCompute {
			rt.Compute += s.Duration()
		} else {
			rt.Comm += s.Duration()
		}
	}
	out := make([]RegionTime, 0, len(acc))
	for _, rt := range acc {
		out = append(out, *rt)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Total(), out[j].Total()
		if ti != tj {
			return ti > tj
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// LabelShare attributes critical-path time to one caller-defined label
// (e.g. a solver instance or coupling unit).
type LabelShare struct {
	Label   string  `json:"label"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"` // fraction of the path total
}

// ByLabel groups path time by a rank-labelling function (wait segments
// count toward the receiving rank's label), sorted by descending share.
func (cp *CriticalPath) ByLabel(label func(rank int) string) []LabelShare {
	acc := map[string]float64{}
	total := 0.0
	for _, s := range cp.Segments {
		d := s.Duration()
		acc[label(s.Rank)] += d
		total += d
	}
	out := make([]LabelShare, 0, len(acc))
	for l, sec := range acc {
		ls := LabelShare{Label: l, Seconds: sec}
		if total > 0 {
			ls.Share = sec / total
		}
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// String renders a per-region critical-path report.
func (cp *CriticalPath) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %.6f s over %d segments, ends on rank %d\n",
		cp.Elapsed, len(cp.Segments), cp.EndRank)
	byKind := cp.ByKind()
	fmt.Fprintf(&sb, "by kind: compute %.6f  wait %.6f  send %.6f  recv %.6f  comm %.6f\n",
		byKind["compute"], byKind["wait"], byKind["send"], byKind["recv"], byKind["comm"])
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s\n", "region", "compute(s)", "comm(s)", "total(s)")
	for _, rt := range cp.ByRegion() {
		fmt.Fprintf(&sb, "%-16s %12.6f %12.6f %12.6f\n", rt.Region, rt.Compute, rt.Comm, rt.Total())
	}
	return sb.String()
}

// ComputeCriticalPath walks the message-causality edges backwards from
// the maximum-clock rank: local events are followed in reverse on the
// current rank, and whenever a wait event is met — the rank was blocked
// for an in-flight message — the walk jumps along the message to its
// sender at the virtual departure time. The resulting segment chain is
// contiguous in time from 0 to the run's elapsed virtual time.
//
// Timelines must be complete (no dropped events) and indexed by world
// rank, with Event.Peer/SendT referring to world ranks and times.
func ComputeCriticalPath(timelines []*Timeline) (*CriticalPath, error) {
	totalEvents := 0
	cur, end := -1, 0.0
	for r, tl := range timelines {
		if tl == nil {
			return nil, fmt.Errorf("trace: critical path: rank %d has no timeline", r)
		}
		if tl.Dropped > 0 {
			return nil, fmt.Errorf("trace: critical path: rank %d dropped %d events (raise TraceMaxEvents)", r, tl.Dropped)
		}
		totalEvents += len(tl.Events)
		if e := tl.End(); cur < 0 || e > end {
			cur, end = r, e
		}
	}
	if cur < 0 {
		return nil, fmt.Errorf("trace: critical path: no timelines")
	}
	cp := &CriticalPath{Elapsed: end, EndRank: cur}
	if end <= 0 {
		return cp, nil
	}

	// lastEventEndingBy returns the index of the last event with T1 <= t;
	// by construction a causality jump always lands on an event boundary.
	lastEventEndingBy := func(tl *Timeline, t float64) int {
		return sort.Search(len(tl.Events), func(i int) bool { return tl.Events[i].T1 > t }) - 1
	}

	t := end
	i := len(timelines[cur].Events) - 1
	var segs []Segment
	for iter := 0; t > 0; iter++ {
		if iter > totalEvents {
			return nil, fmt.Errorf("trace: critical path: walk did not terminate (cycle at t=%g, rank %d)", t, cur)
		}
		if i < 0 {
			return nil, fmt.Errorf("trace: critical path: rank %d timeline does not reach back to t=%g", cur, t)
		}
		ev := timelines[cur].Events[i]
		if ev.Kind == EvWait && ev.Peer >= 0 && ev.Peer < len(timelines) {
			// The rank was blocked for an in-flight message: the chain
			// continues through the network back to the sender.
			segs = append(segs, Segment{Rank: cur, Kind: EvWait, Region: ev.Region, Op: ev.Op, T0: ev.SendT, T1: t})
			cur = ev.Peer
			t = ev.SendT
			i = lastEventEndingBy(timelines[cur], t)
			continue
		}
		segs = append(segs, Segment{Rank: cur, Kind: ev.Kind, Region: ev.Region, Op: ev.Op, T0: ev.T0, T1: t})
		t = ev.T0
		i--
	}
	// Reverse into time order and merge contiguous same-attribution spans.
	for l, r := 0, len(segs)-1; l < r; l, r = l+1, r-1 {
		segs[l], segs[r] = segs[r], segs[l]
	}
	merged := segs[:0]
	for _, s := range segs {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.Rank == s.Rank && last.Kind == s.Kind && last.Region == s.Region && last.Op == s.Op && last.T1 == s.T0 {
				last.T1 = s.T1
				continue
			}
		}
		merged = append(merged, s)
	}
	cp.Segments = merged
	return cp, nil
}
