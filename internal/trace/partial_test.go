package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Aborted runs hand the exporters partial products: nil comm matrices,
// nil timeline slots, timelines cut short mid-run. None of that may
// panic, and the outputs must stay well-formed.

func TestNilCommMatrixIsSafe(t *testing.T) {
	var m *CommMatrix
	m.Sort() // must not panic
	if msgs, b := m.Totals(); msgs != 0 || b != 0 {
		t.Errorf("nil matrix totals = %d msgs, %d bytes; want zeros", msgs, b)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatalf("nil matrix WriteCSV: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "src,dst,messages,bytes" {
		t.Errorf("nil matrix CSV = %q, want header only", got)
	}
}

func TestWriteChromeTracePartialTimelines(t *testing.T) {
	tl := NewTimeline(1, 0)
	tl.Add(Event{Kind: EvCompute, T0: 0, T1: 0.5, Region: "flux", Peer: -1})
	// Rank 0 died before recording anything; rank 2's slot is nil.
	cases := [][]*Timeline{
		nil,
		{},
		{NewTimeline(0, 0), tl, nil},
	}
	for i, tls := range cases {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tls); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var out map[string]any
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("case %d: invalid JSON: %v", i, err)
		}
	}
}

func TestRunSummaryWithMissingSections(t *testing.T) {
	s := &RunSummary{Ranks: 4, Elapsed: 1.5}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "critical_path") {
		t.Error("empty critical-path section serialized")
	}
}
