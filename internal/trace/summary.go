package trace

import (
	"encoding/json"
	"io"

	"cpx/internal/telemetry"
)

// RegionSummary is one region row of a machine-readable run summary.
type RegionSummary struct {
	Region  string  `json:"region"`
	Compute float64 `json:"compute_s"`
	Comm    float64 `json:"comm_s"`
	Calls   int64   `json:"calls"`
}

// PathSummary is the critical-path section of a run summary.
type PathSummary struct {
	Segments   int                `json:"segments"`
	EndRank    int                `json:"end_rank"`
	Total      float64            `json:"total_s"`
	ByKind     map[string]float64 `json:"by_kind_s"`
	ByRegion   []RegionTime       `json:"by_region,omitempty"`
	Components []LabelShare       `json:"components,omitempty"`
}

// Summarize condenses the critical path for JSON export.
func (cp *CriticalPath) Summarize() *PathSummary {
	return &PathSummary{
		Segments: len(cp.Segments),
		EndRank:  cp.EndRank,
		Total:    cp.Total(),
		ByKind:   cp.ByKind(),
		ByRegion: cp.ByRegion(),
	}
}

// CommSummary is the communication-matrix section of a run summary.
type CommSummary struct {
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	Pairs    int   `json:"pairs"` // distinct (src, dst) pairs
}

// RunSummary is the machine-readable summary of one virtual-time run,
// combining the headline statistics with the optional profile, critical
// path and communication matrix sections.
type RunSummary struct {
	Ranks        int             `json:"ranks"`
	Elapsed      float64         `json:"elapsed_s"`
	MaxClockRank int             `json:"max_clock_rank"`
	AvgCompute   float64         `json:"avg_compute_s"`
	AvgComm      float64         `json:"avg_comm_s"`
	CommFraction float64         `json:"comm_fraction"`
	Regions      []RegionSummary `json:"regions,omitempty"`
	CriticalPath *PathSummary    `json:"critical_path,omitempty"`
	Comm         *CommSummary    `json:"comm_matrix,omitempty"`
	// Flight carries the flight-recorder tails of a failed run — the
	// post-mortem trail of each dead rank's last sends, receives and
	// collectives with their virtual timestamps.
	Flight []telemetry.RankTail `json:"flight_recorder,omitempty"`
}

// WriteJSON emits the summary as indented JSON.
func (s *RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
