package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind classifies a timeline event by how its virtual time was spent.
type EventKind uint8

// Event kinds.
const (
	// EvCompute is modelled computation charged to the rank clock.
	EvCompute EventKind = iota
	// EvSend is the per-message CPU overhead of posting a send.
	EvSend
	// EvRecv is the per-message CPU overhead of completing a receive.
	EvRecv
	// EvWait is time the rank was blocked for a message still in flight;
	// its SendT records the virtual departure time at the sender, forming
	// the causality edge the critical-path analysis follows.
	EvWait
	// EvComm is directly charged communication time (analytic schedules,
	// stretched sub-steps) with no single peer.
	EvComm
)

// String returns the kind's stable lower-case name.
func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvWait:
		return "wait"
	case EvComm:
		return "comm"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Event is one span of a rank's virtual-time timeline. Events tile the
// rank clock: every clock advance produces exactly one event, so a
// complete timeline covers [0, clock] with no gaps.
type Event struct {
	Kind   EventKind
	T0, T1 float64 // virtual begin/end seconds
	Region string  // innermost profile region when the time was charged
	Op     string  // collective operation label ("allreduce", ...), if any
	Peer   int     // world rank of the peer for send/recv/wait; -1 if none
	Bytes  int     // message payload bytes for send/recv/wait
	Tag    int     // message tag for send/recv/wait
	SendT  float64 // EvWait only: virtual departure time at the sender
}

// Duration returns the event's virtual extent.
func (e Event) Duration() float64 { return e.T1 - e.T0 }

// DefaultMaxEvents bounds the per-rank timeline unless overridden.
const DefaultMaxEvents = 1 << 20

// Timeline is the ordered event record of one rank. It is owned by a
// single rank goroutine during a run and read only after completion.
type Timeline struct {
	Rank    int
	Events  []Event
	Dropped int // events discarded after the cap was reached
	limit   int
}

// NewTimeline returns an empty timeline for a rank. maxEvents <= 0
// selects DefaultMaxEvents.
func NewTimeline(rank, maxEvents int) *Timeline {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Timeline{Rank: rank, limit: maxEvents}
}

// Add appends an event, coalescing contiguous compute/comm spans of the
// same region and op so tight charge loops stay O(1) in memory. Once the
// cap is hit, further non-coalescible events are counted in Dropped.
func (tl *Timeline) Add(ev Event) {
	if n := len(tl.Events); n > 0 && (ev.Kind == EvCompute || ev.Kind == EvComm) {
		last := &tl.Events[n-1]
		if last.Kind == ev.Kind && last.Region == ev.Region && last.Op == ev.Op && last.T1 == ev.T0 {
			last.T1 = ev.T1
			return
		}
	}
	if len(tl.Events) >= tl.limit {
		tl.Dropped++
		return
	}
	tl.Events = append(tl.Events, ev)
}

// End returns the timeline's final virtual time (the rank clock at exit).
func (tl *Timeline) End() float64 {
	if len(tl.Events) == 0 {
		return 0
	}
	return tl.Events[len(tl.Events)-1].T1
}

// chromeEvent is one entry of the Chrome/Perfetto trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object Perfetto and chrome://tracing
// both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the timelines in Chrome trace-event JSON, one
// thread per rank, with virtual seconds mapped to trace microseconds.
// The output loads directly in ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, timelines []*Timeline) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	for _, tl := range timelines {
		if tl == nil {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tl.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", tl.Rank)},
		})
		for _, ev := range tl.Events {
			name := ev.Region
			if ev.Op != "" {
				name = ev.Op
			}
			if name == "" {
				name = ev.Kind.String()
			}
			ce := chromeEvent{
				Name: name,
				Cat:  ev.Kind.String(),
				Ph:   "X",
				Ts:   ev.T0 * 1e6,
				Dur:  ev.Duration() * 1e6,
				Pid:  0,
				Tid:  tl.Rank,
			}
			if ev.Peer >= 0 {
				ce.Args = map[string]any{"peer": ev.Peer, "bytes": ev.Bytes, "tag": ev.Tag}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
