package trace

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestTimelineCoalescesContiguousCompute(t *testing.T) {
	tl := NewTimeline(0, 0)
	for i := 0; i < 100; i++ {
		tl.Add(Event{Kind: EvCompute, T0: float64(i), T1: float64(i + 1), Region: "solve", Peer: -1})
	}
	if len(tl.Events) != 1 {
		t.Fatalf("got %d events, want 1 coalesced span", len(tl.Events))
	}
	if e := tl.Events[0]; e.T0 != 0 || e.T1 != 100 {
		t.Errorf("coalesced span = [%v,%v], want [0,100]", e.T0, e.T1)
	}
	// A different region breaks the span; sends never coalesce.
	tl.Add(Event{Kind: EvCompute, T0: 100, T1: 101, Region: "other", Peer: -1})
	tl.Add(Event{Kind: EvSend, T0: 101, T1: 102, Region: "other", Peer: 1})
	tl.Add(Event{Kind: EvSend, T0: 102, T1: 103, Region: "other", Peer: 1})
	if len(tl.Events) != 4 {
		t.Errorf("got %d events, want 4", len(tl.Events))
	}
	if tl.End() != 103 {
		t.Errorf("End() = %v, want 103", tl.End())
	}
}

func TestTimelineCapCountsDropped(t *testing.T) {
	tl := NewTimeline(0, 2)
	for i := 0; i < 5; i++ {
		tl.Add(Event{Kind: EvSend, T0: float64(i), T1: float64(i + 1), Peer: 1})
	}
	if len(tl.Events) != 2 || tl.Dropped != 3 {
		t.Errorf("events=%d dropped=%d, want 2/3", len(tl.Events), tl.Dropped)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tl := NewTimeline(3, 0)
	tl.Add(Event{Kind: EvCompute, T0: 0, T1: 1.5, Region: "pressure_field", Peer: -1})
	tl.Add(Event{Kind: EvSend, T0: 1.5, T1: 1.6, Region: "pressure_field", Peer: 7, Bytes: 800, Tag: 4})
	tl.Add(Event{Kind: EvWait, T0: 1.6, T1: 2.0, Region: "spray", Op: "allreduce", Peer: 7, SendT: 1.2})
	var buf strings.Builder
	if err := WriteChromeTrace(&buf, []*Timeline{nil, tl}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// One metadata event plus three spans.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(out.TraceEvents))
	}
	span := out.TraceEvents[1]
	if span["ph"] != "X" || span["name"] != "pressure_field" || span["tid"] != float64(3) {
		t.Errorf("first span = %v", span)
	}
	if span["ts"] != 0.0 || span["dur"] != 1.5e6 {
		t.Errorf("ts/dur = %v/%v, want 0/1.5e6 µs", span["ts"], span["dur"])
	}
	if op := out.TraceEvents[3]; op["name"] != "allreduce" || op["cat"] != "wait" {
		t.Errorf("collective wait span = %v", op)
	}
}

func TestCommMatrixSortMergeCSV(t *testing.T) {
	m := &CommMatrix{Ranks: 4}
	m.AddEdge(2, 0, 1, 100)
	m.AddEdge(0, 1, 2, 16)
	m.AddEdge(0, 1, 1, 8)
	var buf strings.Builder
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	want := [][]string{
		{"src", "dst", "messages", "bytes"},
		{"0", "1", "3", "24"},
		{"2", "0", "1", "100"},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(recs), len(want), buf.String())
	}
	for i := range want {
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Errorf("row %d = %v, want %v", i, recs[i], want[i])
			}
		}
	}
	msgs, bytes := m.Totals()
	if msgs != 4 || bytes != 124 {
		t.Errorf("Totals() = %d,%d want 4,124", msgs, bytes)
	}
}

// TestCriticalPathFollowsMessageCausality builds two hand-crafted rank
// timelines where rank 1 finishes last after waiting for rank 0's
// message, and checks the path jumps to the sender and telescopes to the
// elapsed time.
func TestCriticalPathFollowsMessageCausality(t *testing.T) {
	r0 := NewTimeline(0, 0)
	r0.Add(Event{Kind: EvCompute, T0: 0, T1: 5, Region: "work0", Peer: -1})
	r0.Add(Event{Kind: EvSend, T0: 5, T1: 5.5, Region: "work0", Peer: 1, Bytes: 8})
	// message departs at 5.5, arrives at 8

	r1 := NewTimeline(1, 0)
	r1.Add(Event{Kind: EvCompute, T0: 0, T1: 2, Region: "work1", Peer: -1})
	r1.Add(Event{Kind: EvWait, T0: 2, T1: 8, Region: "work1", Peer: 0, SendT: 5.5})
	r1.Add(Event{Kind: EvRecv, T0: 8, T1: 8.5, Region: "work1", Peer: 0})
	r1.Add(Event{Kind: EvCompute, T0: 8.5, T1: 10, Region: "work1", Peer: -1})

	cp, err := ComputeCriticalPath([]*Timeline{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Elapsed != 10 || cp.EndRank != 1 {
		t.Fatalf("Elapsed/EndRank = %v/%d, want 10/1", cp.Elapsed, cp.EndRank)
	}
	if math.Abs(cp.Total()-cp.Elapsed) > 1e-9 {
		t.Errorf("Total() = %v, want %v", cp.Total(), cp.Elapsed)
	}
	// The path must route through rank 0's compute, not rank 1's early
	// compute (which finished at 2 and then waited).
	wantSegs := []Segment{
		{Rank: 0, Kind: EvCompute, Region: "work0", T0: 0, T1: 5},
		{Rank: 0, Kind: EvSend, Region: "work0", T0: 5, T1: 5.5},
		{Rank: 1, Kind: EvWait, Region: "work1", T0: 5.5, T1: 8},
		{Rank: 1, Kind: EvRecv, Region: "work1", T0: 8, T1: 8.5},
		{Rank: 1, Kind: EvCompute, Region: "work1", T0: 8.5, T1: 10},
	}
	if len(cp.Segments) != len(wantSegs) {
		t.Fatalf("got %d segments %+v, want %d", len(cp.Segments), cp.Segments, len(wantSegs))
	}
	for i, w := range wantSegs {
		g := cp.Segments[i]
		if g.Rank != w.Rank || g.Kind != w.Kind || g.Region != w.Region || g.T0 != w.T0 || g.T1 != w.T1 {
			t.Errorf("segment %d = %+v, want %+v", i, g, w)
		}
	}
	byKind := cp.ByKind()
	if byKind["compute"] != 6.5 || byKind["wait"] != 2.5 {
		t.Errorf("ByKind = %v, want compute 6.5 wait 2.5", byKind)
	}
	regions := cp.ByRegion()
	if regions[0].Region != "work0" || math.Abs(regions[0].Total()-5.5) > 1e-12 {
		t.Errorf("top region = %+v, want work0 5.5s", regions[0])
	}
	if regions[1].Region != "work1" || math.Abs(regions[1].Compute-1.5) > 1e-12 || math.Abs(regions[1].Comm-3.0) > 1e-12 {
		t.Errorf("second region = %+v, want work1 compute 1.5 comm 3.0", regions[1])
	}
	labels := cp.ByLabel(func(r int) string { return []string{"a", "b"}[r] })
	if labels[0].Label != "a" || math.Abs(labels[0].Seconds-5.5) > 1e-12 {
		t.Errorf("ByLabel = %+v, want a=5.5s first", labels)
	}
	if s := cp.String(); !strings.Contains(s, "work0") || !strings.Contains(s, "critical path") {
		t.Errorf("String() missing content:\n%s", s)
	}
}

func TestCriticalPathRejectsDroppedEvents(t *testing.T) {
	tl := NewTimeline(0, 1)
	tl.Add(Event{Kind: EvSend, T0: 0, T1: 1, Peer: 0})
	tl.Add(Event{Kind: EvSend, T0: 1, T1: 2, Peer: 0})
	if _, err := ComputeCriticalPath([]*Timeline{tl}); err == nil {
		t.Fatal("dropped events did not fail the analysis")
	}
	if _, err := ComputeCriticalPath([]*Timeline{nil}); err == nil {
		t.Fatal("nil timeline did not fail the analysis")
	}
}

func TestScopedPairsPushPop(t *testing.T) {
	p := NewProfile()
	func() {
		defer p.Scoped("outer")()
		p.AddCompute(1)
		func() {
			defer p.Scoped("inner")()
			p.AddComm(2)
		}()
	}()
	if p.Current() != "other" {
		t.Fatalf("stack not balanced after Scoped: current = %q", p.Current())
	}
	if e := p.Entry("outer"); e.Compute != 1 || e.Calls != 1 {
		t.Errorf("outer = %+v", e)
	}
	if e := p.Entry("inner"); e.Comm != 2 || e.Calls != 1 {
		t.Errorf("inner = %+v", e)
	}
}

func TestPopReturnsName(t *testing.T) {
	p := NewProfile()
	p.Push("a")
	p.Push("b")
	if got := p.Pop(); got != "b" {
		t.Errorf("Pop() = %q, want b", got)
	}
	if got := p.Pop(); got != "a" {
		t.Errorf("Pop() = %q, want a", got)
	}
}

func TestReportTieBreakOnEqualShares(t *testing.T) {
	p := NewProfile()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		p.Push(name)
		p.AddCompute(2)
		p.Pop()
	}
	rows := p.Report()
	want := []string{"alpha", "mid", "zeta"}
	for i, w := range want {
		if rows[i].Region != w {
			t.Fatalf("tied rows order = %v, want alphabetical %v",
				[]string{rows[0].Region, rows[1].Region, rows[2].Region}, want)
		}
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	p := NewProfile()
	p.Push("pressure_field")
	p.AddCompute(3)
	p.AddComm(1)
	p.Pop()
	p.Push("spray")
	p.AddComm(4)
	p.Pop()
	var buf strings.Builder
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("WriteCSV output is not parseable CSV: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(recs))
	}
	got := map[string][4]float64{}
	for _, rec := range recs[1:] {
		var vals [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(rec[1+i], 64)
			if err != nil {
				t.Fatalf("row %v: %v", rec, err)
			}
			vals[i] = v
		}
		got[rec[0]] = vals
	}
	pf := got["pressure_field"]
	if math.Abs(pf[0]-0.375) > 1e-6 || math.Abs(pf[1]-0.125) > 1e-6 || math.Abs(pf[2]-0.5) > 1e-6 || pf[3] != 1 {
		t.Errorf("pressure_field round-trip = %v", pf)
	}
	sp := got["spray"]
	if math.Abs(sp[0]) > 1e-6 || math.Abs(sp[1]-0.5) > 1e-6 || sp[3] != 1 {
		t.Errorf("spray round-trip = %v", sp)
	}
}

func TestRunSummaryJSON(t *testing.T) {
	sum := &RunSummary{
		Ranks: 4, Elapsed: 2.5, MaxClockRank: 3,
		Regions: []RegionSummary{{Region: "solve", Compute: 2, Comm: 0.5, Calls: 10}},
		Comm:    &CommSummary{Messages: 12, Bytes: 960, Pairs: 6},
	}
	var buf strings.Builder
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if back.Ranks != 4 || back.Elapsed != 2.5 || back.Regions[0].Region != "solve" || back.Comm.Bytes != 960 {
		t.Errorf("round-trip = %+v", back)
	}
	if back.CriticalPath != nil {
		t.Errorf("absent critical path should stay nil, got %+v", back.CriticalPath)
	}
}
