// Package trace provides lightweight hierarchical timing instrumentation
// for the virtual-time mini-apps. It plays the role ARM MAP plays in the
// paper: every named region of a solver accumulates separate compute and
// communication time, and per-rank profiles can be merged into the
// per-function breakdown tables of Fig. 5.
//
// A Profile is owned by a single rank (goroutine) and is not safe for
// concurrent use; merging across ranks happens after a run completes.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry accumulates time attributed to one named region.
type Entry struct {
	Compute float64 // virtual seconds spent in computation
	Comm    float64 // virtual seconds spent in communication (incl. wait)
	Calls   int64   // number of times the region was entered
}

// Total returns compute plus communication time.
func (e Entry) Total() float64 { return e.Compute + e.Comm }

// Profile records per-region compute/communication time for one rank.
// The zero value is not usable; call NewProfile.
type Profile struct {
	entries map[string]*Entry
	stack   []string
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{entries: make(map[string]*Entry)}
}

// Push enters a named region. Regions nest; time is attributed to the
// innermost open region only, so parents see exclusive (self) time.
func (p *Profile) Push(name string) {
	p.stack = append(p.stack, name)
	p.entry(name).Calls++
}

// Pop leaves the innermost region and returns its name. Popping an empty
// stack panics: it is always a programming error in the instrumented
// solver.
func (p *Profile) Pop() string {
	if len(p.stack) == 0 {
		panic("trace: Pop on empty region stack")
	}
	name := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	return name
}

// Scoped enters a named region and returns the function that leaves it,
// for defer-friendly pairing at call sites:
//
//	defer p.Scoped("pressure_field")()
func (p *Profile) Scoped(name string) func() {
	p.Push(name)
	return func() { p.Pop() }
}

// Current returns the innermost open region name, or "other" if none.
func (p *Profile) Current() string {
	if len(p.stack) == 0 {
		return "other"
	}
	return p.stack[len(p.stack)-1]
}

func (p *Profile) entry(name string) *Entry {
	e := p.entries[name]
	if e == nil {
		e = &Entry{}
		p.entries[name] = e
	}
	return e
}

// AddCompute attributes s virtual seconds of computation to the current region.
func (p *Profile) AddCompute(s float64) { p.entry(p.Current()).Compute += s }

// AddComm attributes s virtual seconds of communication to the current region.
func (p *Profile) AddComm(s float64) { p.entry(p.Current()).Comm += s }

// Entry returns a copy of the named region's totals (zero if absent).
func (p *Profile) Entry(name string) Entry {
	if e := p.entries[name]; e != nil {
		return *e
	}
	return Entry{}
}

// Regions returns the region names present, sorted.
func (p *Profile) Regions() []string {
	names := make([]string, 0, len(p.entries))
	for n := range p.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Total sums compute and comm over all regions.
func (p *Profile) Total() (compute, comm float64) {
	for _, e := range p.entries {
		compute += e.Compute
		comm += e.Comm
	}
	return
}

// Merge adds all of q's entries into p. Used to aggregate rank profiles.
func (p *Profile) Merge(q *Profile) {
	for name, e := range q.entries {
		t := p.entry(name)
		t.Compute += e.Compute
		t.Comm += e.Comm
		t.Calls += e.Calls
	}
}

// MergeAll aggregates a set of per-rank profiles into one summed profile.
func MergeAll(profiles []*Profile) *Profile {
	out := NewProfile()
	for _, q := range profiles {
		if q != nil {
			out.Merge(q)
		}
	}
	return out
}

// Breakdown is one row of a per-function report: the share of total
// run-time a region consumes, split into compute and communication,
// mirroring Fig. 5a of the paper.
type Breakdown struct {
	Region       string
	ComputeShare float64 // fraction of total time in this region's compute
	CommShare    float64 // fraction of total time in this region's comm
}

// TotalShare is the region's overall share of run-time.
func (b Breakdown) TotalShare() float64 { return b.ComputeShare + b.CommShare }

// Report computes per-region shares of the profile's total time, sorted by
// descending total share.
func (p *Profile) Report() []Breakdown {
	compute, comm := p.Total()
	total := compute + comm
	if total <= 0 {
		return nil
	}
	rows := make([]Breakdown, 0, len(p.entries))
	for name, e := range p.entries {
		rows = append(rows, Breakdown{
			Region:       name,
			ComputeShare: e.Compute / total,
			CommShare:    e.Comm / total,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := rows[i].TotalShare(), rows[j].TotalShare()
		if ti != tj {
			return ti > tj
		}
		return rows[i].Region < rows[j].Region
	})
	return rows
}

// WriteCSV emits the per-region breakdown as CSV (region, compute share,
// comm share, calls) for external plotting of Fig. 5-style figures.
func (p *Profile) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"region", "compute_share", "comm_share", "total_share", "calls"}); err != nil {
		return err
	}
	for _, b := range p.Report() {
		e := p.entries[b.Region]
		rec := []string{
			b.Region,
			strconv.FormatFloat(b.ComputeShare, 'f', 6, 64),
			strconv.FormatFloat(b.CommShare, 'f', 6, 64),
			strconv.FormatFloat(b.TotalShare(), 'f', 6, 64),
			strconv.FormatInt(e.Calls, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the report as an aligned text table.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %8s\n", "region", "compute%", "comm%", "total%", "calls")
	for _, b := range p.Report() {
		e := p.entries[b.Region]
		fmt.Fprintf(&sb, "%-16s %9.1f%% %9.1f%% %9.1f%% %8d\n",
			b.Region, 100*b.ComputeShare, 100*b.CommShare, 100*b.TotalShare(), e.Calls)
	}
	return sb.String()
}
