package trace

import (
	"math"
	"strings"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPushPopAttribution(t *testing.T) {
	p := NewProfile()
	p.Push("outer")
	p.AddCompute(1.0)
	p.Push("inner")
	p.AddCompute(2.0)
	p.AddComm(0.5)
	p.Pop()
	p.AddCompute(3.0)
	p.Pop()

	outer := p.Entry("outer")
	if !almostEq(outer.Compute, 4.0) {
		t.Errorf("outer compute = %v, want 4.0 (exclusive time)", outer.Compute)
	}
	inner := p.Entry("inner")
	if !almostEq(inner.Compute, 2.0) || !almostEq(inner.Comm, 0.5) {
		t.Errorf("inner = %+v, want compute 2.0 comm 0.5", inner)
	}
	if outer.Calls != 1 || inner.Calls != 1 {
		t.Errorf("call counts = %d,%d, want 1,1", outer.Calls, inner.Calls)
	}
}

func TestDefaultRegionIsOther(t *testing.T) {
	p := NewProfile()
	p.AddCompute(1.5)
	if got := p.Entry("other").Compute; !almostEq(got, 1.5) {
		t.Errorf("unscoped time went to %v in 'other', want 1.5", got)
	}
	if p.Current() != "other" {
		t.Errorf("Current() = %q, want other", p.Current())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack did not panic")
		}
	}()
	NewProfile().Pop()
}

func TestEntryAbsentIsZero(t *testing.T) {
	p := NewProfile()
	if e := p.Entry("nope"); e.Compute != 0 || e.Comm != 0 || e.Calls != 0 {
		t.Errorf("absent entry = %+v, want zero", e)
	}
}

func TestMerge(t *testing.T) {
	a := NewProfile()
	a.Push("f")
	a.AddCompute(1)
	a.AddComm(2)
	a.Pop()
	b := NewProfile()
	b.Push("f")
	b.AddCompute(3)
	b.Pop()
	b.Push("g")
	b.AddComm(4)
	b.Pop()

	m := MergeAll([]*Profile{a, b, nil})
	if f := m.Entry("f"); !almostEq(f.Compute, 4) || !almostEq(f.Comm, 2) || f.Calls != 2 {
		t.Errorf("merged f = %+v", f)
	}
	if g := m.Entry("g"); !almostEq(g.Comm, 4) {
		t.Errorf("merged g = %+v", g)
	}
}

func TestReportSharesSumToOne(t *testing.T) {
	p := NewProfile()
	p.Push("a")
	p.AddCompute(3)
	p.Pop()
	p.Push("b")
	p.AddComm(1)
	p.Pop()
	total := 0.0
	for _, row := range p.Report() {
		total += row.TotalShare()
	}
	if !almostEq(total, 1.0) {
		t.Errorf("shares sum to %v, want 1", total)
	}
	rows := p.Report()
	if rows[0].Region != "a" {
		t.Errorf("report not sorted by share: first = %q", rows[0].Region)
	}
}

func TestReportEmpty(t *testing.T) {
	if rows := NewProfile().Report(); rows != nil {
		t.Errorf("empty profile report = %v, want nil", rows)
	}
}

func TestRegionsSorted(t *testing.T) {
	p := NewProfile()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		p.Push(n)
		p.AddCompute(1)
		p.Pop()
	}
	got := p.Regions()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Regions() = %v, want %v", got, want)
		}
	}
}

func TestStringContainsRegions(t *testing.T) {
	p := NewProfile()
	p.Push("pressure_field")
	p.AddCompute(1)
	p.Pop()
	if s := p.String(); !strings.Contains(s, "pressure_field") {
		t.Errorf("String() missing region: %s", s)
	}
}

func TestTotals(t *testing.T) {
	p := NewProfile()
	p.Push("x")
	p.AddCompute(2)
	p.AddComm(3)
	p.Pop()
	comp, comm := p.Total()
	if !almostEq(comp, 2) || !almostEq(comm, 3) {
		t.Errorf("Total() = %v,%v want 2,3", comp, comm)
	}
	if e := p.Entry("x"); !almostEq(e.Total(), 5) {
		t.Errorf("Entry.Total() = %v, want 5", e.Total())
	}
}

func TestWriteCSV(t *testing.T) {
	p := NewProfile()
	p.Push("pressure_field")
	p.AddCompute(3)
	p.AddComm(1)
	p.Pop()
	var buf strings.Builder
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "region,compute_share") || !strings.Contains(out, "pressure_field,0.75") {
		t.Errorf("csv output wrong:\n%s", out)
	}
}
